// Folklore baselines: correctness under churn, the O(eps^-1) cost shape,
// resizable behaviour (compacting variant), pigeonhole fallback (windowed).
#include <gtest/gtest.h>

#include "alloc/folklore.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

Sequence churn_seq(double eps, std::size_t updates, std::uint64_t seed) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.min_size = static_cast<Tick>(eps * static_cast<double>(kCap));
  c.max_size = 2 * c.min_size - 1;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

TEST(FolkloreCompact, SurvivesChurnWithFullValidation) {
  const RunStats s =
      testing::run_with_invariants("folklore-compact", churn_seq(0.1, 500, 1));
  EXPECT_GT(s.updates, 500u);
}

TEST(FolkloreCompact, EmptiesCleanly) {
  Memory mem = testing::strict_memory(kCap, 0.25);
  FolkloreCompact alloc(mem);
  Engine engine(mem, alloc);
  const Tick size = kCap / 8;
  for (ItemId i = 1; i <= 4; ++i) engine.step(Update::insert(i, size));
  for (ItemId i = 1; i <= 4; ++i) engine.step(Update::erase(i, size));
  EXPECT_EQ(mem.item_count(), 0u);
  EXPECT_EQ(mem.live_mass(), 0u);
}

TEST(FolkloreCompact, FirstFitReusesGaps) {
  Memory mem = testing::strict_memory(1000, 0.4);
  FolkloreCompact alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 100));
  engine.step(Update::insert(2, 100));
  engine.step(Update::insert(3, 100));
  // Delete the middle item: gap of 100 at offset 100, waste 100 <= eps/2.
  engine.step(Update::erase(2, 100));
  // A 50-tick insert must land in the gap at offset 100 (first fit).
  engine.step(Update::insert(4, 50));
  EXPECT_EQ(mem.offset_of(4), 100u);
}

TEST(FolkloreCompact, CompactsWhenWasteExceedsHalfEps) {
  Memory mem = testing::strict_memory(1000, 0.2);  // eps = 200 ticks
  FolkloreCompact alloc(mem);
  Engine engine(mem, alloc);
  for (ItemId i = 1; i <= 6; ++i) engine.step(Update::insert(i, 60));
  // Deleting two non-adjacent items wastes 120 > 100 = eps/2 -> compaction.
  engine.step(Update::erase(1, 60));
  EXPECT_EQ(alloc.compactions(), 0u);  // waste 60 <= 100
  engine.step(Update::erase(3, 60));
  EXPECT_EQ(alloc.compactions(), 1u);
  // After compaction the layout is contiguous from 0.
  EXPECT_EQ(mem.span_end(), mem.live_mass());
}

TEST(FolkloreCompact, DeleteOfLastItemShrinksSpan) {
  Memory mem = testing::strict_memory(1000, 0.2);
  FolkloreCompact alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 100));
  engine.step(Update::insert(2, 100));
  engine.step(Update::erase(2, 100));
  EXPECT_EQ(mem.span_end(), 100u);
  EXPECT_EQ(alloc.compactions(), 0u);  // no interior waste
}

TEST(FolkloreWindowed, SurvivesChurn) {
  const RunStats s = testing::run_with_invariants("folklore-windowed",
                                                  churn_seq(0.1, 500, 2));
  EXPECT_GT(s.updates, 500u);
}

TEST(FolkloreWindowed, DeletesAreFree) {
  Memory mem = testing::strict_memory(kCap, 0.25);
  FolkloreWindowed alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, kCap / 8));
  EXPECT_DOUBLE_EQ(engine.step(Update::erase(1, kCap / 8)), 0.0);
}

TEST(FolkloreWindowed, PigeonholeTriggersUnderFragmentation) {
  FragmenterConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.rounds = 3;
  const Sequence seq = make_fragmenter(c);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  FolkloreWindowed alloc(mem);
  Engine engine(mem, alloc);
  engine.run(seq.updates);
  EXPECT_GT(alloc.windowed_inserts(), 0u);
}

TEST(FolkloreWindowed, CostBoundedByEpsInverse) {
  FragmenterConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.rounds = 3;
  const Sequence seq = make_fragmenter(c);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  FolkloreWindowed alloc(mem);
  Engine engine(mem, alloc);
  const RunStats s = engine.run(seq.updates);
  // Windowed insert cost <= W/k + 1 = 3/eps + 1.
  EXPECT_LE(s.max_cost(), 3.0 / c.eps + 1.0);
}

// Parameterized property sweep: both baselines respect all memory-model
// invariants across eps and seeds.
struct FolkloreParam {
  const char* name;
  double eps;
  std::uint64_t seed;
};

class FolkloreSweep : public ::testing::TestWithParam<FolkloreParam> {};

TEST_P(FolkloreSweep, InvariantsHoldUnderChurn) {
  const auto [name, eps, seed] = GetParam();
  const RunStats s =
      testing::run_with_invariants(name, churn_seq(eps, 400, seed));
  // Folklore cost can never exceed ~3/eps + 1 per update.
  EXPECT_LE(s.max_cost(), 3.0 / eps + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FolkloreSweep,
    ::testing::Values(FolkloreParam{"folklore-compact", 1.0 / 8, 1},
                      FolkloreParam{"folklore-compact", 1.0 / 16, 2},
                      FolkloreParam{"folklore-compact", 1.0 / 32, 3},
                      FolkloreParam{"folklore-compact", 1.0 / 64, 4},
                      FolkloreParam{"folklore-windowed", 1.0 / 8, 1},
                      FolkloreParam{"folklore-windowed", 1.0 / 16, 2},
                      FolkloreParam{"folklore-windowed", 1.0 / 32, 3},
                      FolkloreParam{"folklore-windowed", 1.0 / 64, 4}));

}  // namespace
}  // namespace memreal
