// Registry smoke test: every allocator name that the registry exposes must
// construct via make_allocator and survive a ~100-update random sequence —
// on BOTH cell engines.  The validated engine runs exhaustive memory
// validation and per-update invariant checks; the release engine runs the
// unchecked fast path with a final full audit.  Parameterizing over
// engine_names() means any future registry allocator is smoke-tested on
// the fast path for free.
//
// Each allocator only guarantees behaviour on its admissible size regime,
// so the workload is chosen per name (tests/testing.h regime_sequence) —
// registering a new allocator without adding a mapping there fails the
// test, so new names can never land without minimal coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "alloc/registry.h"
#include "harness/cell.h"
#include "mem/memory.h"
#include "testing.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;
constexpr std::size_t kUpdates = 100;

TEST(RegistrySmoke, NamesAreUniqueAndFactoriesResolve) {
  auto names = allocator_names();
  ASSERT_FALSE(names.empty());
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate allocator name registered";
  for (const auto& name : names) {
    EXPECT_TRUE(allocator_factory(name)) << name;
  }
}

class RegistrySmokePerEngine
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySmokePerEngine, EveryRegisteredAllocatorSurvivesRandomRun) {
  const std::string& engine = GetParam();
  for (const auto& name : allocator_names()) {
    SCOPED_TRACE(name);
    const testing::RegimeCase c = testing::regime_case(name);
    const Sequence seq = testing::regime_sequence(c, kCap, kUpdates,
                                                  /*seed=*/17);
    ASSERT_GE(seq.size(), kUpdates) << "workload too short for " << name;
    seq.check_well_formed();
    RunStats stats;
    if (engine == "validated") {
      // Keep the historical exhaustive mode: audit + allocator
      // check_invariants at every update, not just at run end.
      stats = testing::run_with_invariants(name, seq, /*seed=*/17, c.delta,
                                           /*check_every=*/1);
    } else {
      stats = testing::run_cell(engine, name, seq, /*seed=*/17, c.delta);
    }
    EXPECT_EQ(stats.updates, seq.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RegistrySmokePerEngine,
                         ::testing::ValuesIn(engine_names()),
                         [](const auto& info) { return info.param; });

TEST(RegistrySmoke, UnknownAllocatorErrorListsRegisteredNames) {
  for (const auto* lookup : {"factory", "info"}) {
    SCOPED_TRACE(lookup);
    try {
      if (std::string(lookup) == "factory") {
        (void)allocator_factory("no-such-allocator");
      } else {
        (void)allocator_info("no-such-allocator");
      }
      FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("no-such-allocator"), std::string::npos);
      for (const auto& name : allocator_names()) {
        EXPECT_NE(what.find(name), std::string::npos) << name;
      }
    }
  }
}

TEST(RegistrySmoke, ConstructedAllocatorsReportNames) {
  for (const auto& name : allocator_names()) {
    SCOPED_TRACE(name);
    Memory mem = testing::strict_memory(kCap, 1.0 / 32);
    AllocatorParams p;
    p.eps = 1.0 / 32;
    if (name == "rsum") {
      p.eps = 1.0 / 256;
      p.delta = 1.0 / 128;
    }
    auto alloc = make_allocator(name, mem, p);
    ASSERT_NE(alloc, nullptr);
    EXPECT_FALSE(alloc->name().empty());
  }
}

}  // namespace
}  // namespace memreal
