// Registry smoke test: every allocator name that the registry exposes must
// construct via make_allocator and survive a ~100-update random sequence
// under exhaustive memory validation and per-update invariant checks.
//
// Each allocator only guarantees behaviour on its admissible size regime,
// so the workload is chosen per name below.  Registering a new allocator
// without adding a mapping here fails the test — new names can never land
// without minimal coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "alloc/registry.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;
constexpr std::size_t kUpdates = 100;

struct SmokeCase {
  std::string allocator;
  double eps = 1.0 / 32;
  double delta = 0.0;
};

Sequence smoke_sequence(const SmokeCase& c, std::uint64_t seed) {
  const std::string& name = c.allocator;
  if (name == "folklore-compact" || name == "folklore-windowed" ||
      name == "simple") {
    return make_simple_regime(kCap, c.eps, kUpdates, seed);
  }
  if (name == "geo") {
    GeoRegimeConfig g;
    g.capacity = kCap;
    g.eps = c.eps;
    g.churn_updates = kUpdates;
    g.huge_fraction = 0.05;
    g.seed = seed;
    return make_geo_regime(g);
  }
  if (name == "tinyslab" || name == "flexhash") {
    // Tiny-item churn: sizes in (0, eps^4] of capacity.
    const auto cap_d = static_cast<double>(kCap);
    const auto tiny_hi = static_cast<Tick>(std::pow(c.eps, 4.0) * cap_d);
    ChurnConfig cc;
    cc.capacity = kCap;
    cc.eps = c.eps;
    cc.min_size = std::max<Tick>(1, tiny_hi / 1024);
    cc.max_size = tiny_hi;
    cc.target_load =
        std::min(0.5, 2000.0 * static_cast<double>(cc.max_size) / cap_d);
    cc.churn_updates = kUpdates;
    cc.seed = seed;
    return make_churn(cc);
  }
  if (name == "combined") {
    MixedTinyLargeConfig m;
    m.capacity = kCap;
    m.eps = c.eps;
    m.churn_updates = kUpdates;
    m.seed = seed;
    return make_mixed_tiny_large(m);
  }
  if (name == "rsum") {
    RandomItemConfig r;
    r.capacity = kCap;
    r.eps = c.eps;
    r.delta = c.delta;
    r.churn_pairs = kUpdates / 2;
    r.seed = seed;
    return make_random_item_sequence(r);
  }
  if (name == "discrete") {
    DiscreteChurnConfig d;
    d.capacity = kCap;
    d.eps = c.eps;
    d.churn_updates = kUpdates;
    d.seed = seed;
    return make_discrete_churn(d);
  }
  ADD_FAILURE() << "allocator '" << name
                << "' is registered but has no smoke workload; add one to "
                   "tests/test_registry_smoke.cpp";
  return Sequence{};
}

SmokeCase smoke_case(const std::string& name) {
  SmokeCase c;
  c.allocator = name;
  if (name == "rsum") {
    c.eps = 1.0 / 256;
    c.delta = 1.0 / 128;
  }
  return c;
}

TEST(RegistrySmoke, NamesAreUniqueAndFactoriesResolve) {
  auto names = allocator_names();
  ASSERT_FALSE(names.empty());
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate allocator name registered";
  for (const auto& name : names) {
    EXPECT_TRUE(allocator_factory(name)) << name;
  }
}

TEST(RegistrySmoke, EveryRegisteredAllocatorSurvivesValidatedRandomRun) {
  for (const auto& name : allocator_names()) {
    SCOPED_TRACE(name);
    const SmokeCase c = smoke_case(name);
    const Sequence seq = smoke_sequence(c, /*seed=*/17);
    ASSERT_GE(seq.size(), kUpdates) << "workload too short for " << name;
    seq.check_well_formed();
    const RunStats stats =
        testing::run_with_invariants(name, seq, /*seed=*/17, c.delta,
                                     /*check_every=*/1);
    EXPECT_EQ(stats.updates, seq.size());
  }
}

TEST(RegistrySmoke, UnknownAllocatorErrorListsRegisteredNames) {
  for (const auto* lookup : {"factory", "info"}) {
    SCOPED_TRACE(lookup);
    try {
      if (std::string(lookup) == "factory") {
        (void)allocator_factory("no-such-allocator");
      } else {
        (void)allocator_info("no-such-allocator");
      }
      FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("no-such-allocator"), std::string::npos);
      for (const auto& name : allocator_names()) {
        EXPECT_NE(what.find(name), std::string::npos) << name;
      }
    }
  }
}

TEST(RegistrySmoke, ConstructedAllocatorsReportNames) {
  for (const auto& name : allocator_names()) {
    SCOPED_TRACE(name);
    Memory mem = testing::strict_memory(kCap, 1.0 / 32);
    AllocatorParams p;
    p.eps = 1.0 / 32;
    if (name == "rsum") {
      p.eps = 1.0 / 256;
      p.delta = 1.0 / 128;
    }
    auto alloc = make_allocator(name, mem, p);
    ASSERT_NE(alloc, nullptr);
    EXPECT_FALSE(alloc->name().empty());
  }
}

}  // namespace
}  // namespace memreal
