// TINYSLAB (TINYHASH substitute): unit/slab structure of Lemma 4.9,
// swap-with-last deletes, buddy coalescing, compaction, space bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/tinyslab.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

Sequence tiny_seq(double eps, std::size_t updates, std::uint64_t seed) {
  const auto cap_d = static_cast<double>(kCap);
  const auto tiny_hi = static_cast<Tick>(std::pow(eps, 4.0) * cap_d);
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.min_size = std::max<Tick>(1, tiny_hi / 1024);
  c.max_size = tiny_hi;
  // Tiny items cannot fill memory with a sane item count; cap the load so
  // runs stay around a few thousand items.
  c.target_load = std::min(0.5, 3000.0 * static_cast<double>(c.max_size) /
                                    cap_d);
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

TEST(TinySlab, UnitSizeIsPowerOfTwoNearEpsCubed) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  const Tick m = t.unit_size();
  EXPECT_EQ(m & (m - 1), 0u);  // power of two
  const auto e3 =
      static_cast<double>(kCap) * std::pow(1.0 / 64, 3.0);
  EXPECT_LE(static_cast<double>(m), e3 + 1);
  EXPECT_GE(static_cast<double>(m), e3 / 4);
}

TEST(TinySlab, MaxSizeDefaultsToEps4) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  EXPECT_EQ(t.max_item_size(),
            static_cast<Tick>(std::pow(1.0 / 64, 4.0) *
                              static_cast<double>(kCap)));
}

TEST(TinySlab, ClassExtentsDecreaseGeometrically) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  EXPECT_GT(t.class_count(), 10u);
  // class_of_size maps the bounds correctly.
  EXPECT_EQ(t.class_of_size(t.max_item_size()), 0u);
  const std::size_t deep = t.class_of_size(t.min_item_size());
  EXPECT_EQ(deep, t.class_count() - 1);
}

TEST(TinySlab, InsertEraseSingle) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick s = t.max_item_size() / 2;
  engine.step(Update::insert(1, s));
  EXPECT_EQ(t.unit_count(), 1u);
  EXPECT_EQ(mem.item_count(), 1u);
  t.check_invariants();
  engine.step(Update::erase(1, s));
  EXPECT_EQ(mem.item_count(), 0u);
  EXPECT_EQ(t.unit_count(), 0u);  // trailing empty unit destroyed
  t.check_invariants();
}

TEST(TinySlab, ExtentIsClassRounded) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick s = t.max_item_size() / 2;
  engine.step(Update::insert(1, s));
  EXPECT_GE(mem.extent_of(1), s);
  // Rounding overhead is at most the class ratio 1 + eps/4.
  EXPECT_LE(static_cast<double>(mem.extent_of(1)),
            static_cast<double>(s) * (1.0 + (1.0 / 64) / 4.0) + 1);
}

TEST(TinySlab, SwapWithLastOnDelete) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick s = t.max_item_size() / 2;
  // Same class: deleting the first moves the last into its slot.
  engine.step(Update::insert(1, s));
  engine.step(Update::insert(2, s + 1));
  engine.step(Update::insert(3, s + 2));
  const Tick slot1 = mem.offset_of(1);
  engine.step(Update::erase(1, s));
  EXPECT_EQ(mem.offset_of(3), slot1);
  t.check_invariants();
}

TEST(TinySlab, ItemsNeverSpanUnits) {
  const double eps = 1.0 / 16;
  const Sequence seq = tiny_seq(eps, 800, 3);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  TinySlabConfig c;
  c.eps = eps;
  TinySlabAllocator t(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, t, opts);
  engine.run(seq.updates);
  const Tick m = t.unit_size();
  for (const auto& it : mem.snapshot()) {
    EXPECT_EQ(it.offset / m, (it.offset + it.extent - 1) / m)
        << "item spans a unit boundary";
  }
}

TEST(TinySlab, CompactionReleasesUnits) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  // Tight slack budget so compactions actually fire.
  c.slack_budget = Tick{1} << 30;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick s = t.max_item_size() / 2;
  std::size_t next = 1;
  for (std::size_t i = 0; i < 400; ++i) {
    engine.step(Update::insert(next++, s + i % 64));
  }
  const std::size_t peak_units = t.unit_count();
  for (std::size_t i = 1; i < next; i += 2) {
    engine.step(Update::erase(i, s + (i - 1) % 64));
  }
  t.check_invariants();
  EXPECT_LT(t.unit_count(), peak_units);
  EXPECT_GT(t.compactions(), 0u);
}

TEST(TinySlab, RejectsOutOfRangeSizes) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  EXPECT_THROW(engine.step(Update::insert(1, t.max_item_size() * 2)),
               InvariantViolation);
  EXPECT_THROW(engine.step(Update::insert(2, t.min_item_size() / 2)),
               InvariantViolation);
}

TEST(TinySlab, SpaceBoundedUnderChurn) {
  const double eps = 1.0 / 16;
  const Sequence seq = tiny_seq(eps, 1500, 7);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  TinySlabConfig c;
  c.eps = eps;
  TinySlabAllocator t(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 32;
  Engine engine(mem, t, opts);
  engine.run(seq.updates);
  // Units*M stays within live mass plus the slack budget (the substitute's
  // resizable-style guarantee).
  EXPECT_LE(static_cast<double>(t.unit_count()) *
                static_cast<double>(t.unit_size()),
            static_cast<double>(mem.live_mass()) * (1.0 + eps) +
                static_cast<double>(mem.eps_ticks()));
}

TEST(TinySlab, MixedClassesShareUnitsViaBuddySplits) {
  // Two classes with very different slab sizes must coexist inside units:
  // allocating the small class splits the big class's leftover buddies.
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick big = t.max_item_size();
  const Tick small = std::max<Tick>(t.min_item_size(), big / 512);
  ItemId next = 1;
  for (int i = 0; i < 8; ++i) engine.step(Update::insert(next++, big));
  for (int i = 0; i < 64; ++i) engine.step(Update::insert(next++, small));
  for (int i = 0; i < 8; ++i) engine.step(Update::insert(next++, big));
  t.check_invariants();
  // Interleaved deletes exercise coalescing across classes.
  for (ItemId i = 1; i < next; i += 2) {
    engine.step(Update::erase(i, mem.size_of(i)));
    if (i % 8 == 1) t.check_invariants();
  }
  t.check_invariants();
  mem.audit();
}

TEST(TinySlab, ReplaceUnitItemsIsIdempotent) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  TinySlabConfig c;
  c.eps = 1.0 / 64;
  TinySlabAllocator t(mem, c);
  Engine engine(mem, t);
  const Tick s = t.max_item_size() / 2;
  for (ItemId i = 1; i <= 20; ++i) engine.step(Update::insert(i, s));
  const auto before = mem.snapshot();
  mem.begin_update(1, true);
  for (std::size_t u = 0; u < t.unit_count(); ++u) t.replace_unit_items(u);
  mem.place(999, mem.span_end() + s, 1);  // keep the update non-empty
  mem.remove(999);
  // Identity unit space: re-placing everything must be a no-op.
  EXPECT_EQ(mem.moved_in_update(), 1u);  // only the helper placement
  mem.end_update();
  const auto after = mem.snapshot();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].offset, after[i].offset);
  }
}

// Parameterized sweep across eps and seeds with exhaustive invariants.
struct TinyParam {
  double eps;
  std::uint64_t seed;
};

class TinySweep : public ::testing::TestWithParam<TinyParam> {};

TEST_P(TinySweep, InvariantsHold) {
  const auto [eps, seed] = GetParam();
  const Sequence seq = tiny_seq(eps, 700, seed);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  TinySlabConfig c;
  c.eps = eps;
  c.seed = seed;
  TinySlabAllocator t(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 4;
  Engine engine(mem, t, opts);
  const RunStats s = engine.run(seq.updates);
  // Tiny-item updates are cheap: mean cost far below eps^-1/2.
  EXPECT_LT(s.mean_cost(), 1.0 / std::sqrt(eps));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TinySweep,
                         ::testing::Values(TinyParam{1.0 / 8, 1},
                                           TinyParam{1.0 / 8, 2},
                                           TinyParam{1.0 / 16, 1},
                                           TinyParam{1.0 / 16, 2},
                                           TinyParam{1.0 / 32, 1},
                                           TinyParam{1.0 / 32, 2}));

}  // namespace
}  // namespace memreal
