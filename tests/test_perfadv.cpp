// The adversarial performance search (src/perfadv): planted-adversary
// recovery, campaign determinism across thread counts, bit-exact corpus
// replay, the committed ci/adversaries regression corpus, and zoo
// well-formedness for every registry allocator's size profile.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "perfadv/campaign.h"
#include "perfadv/search.h"
#include "perfadv/zoo.h"
#include "testing.h"
#include "workload/sequence.h"

namespace memreal {
namespace {

namespace fs = std::filesystem;

/// A throwaway corpus directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ =
        (fs::temp_directory_path() / ("memreal_perfadv_" + tag)).string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Small search shape shared by the deterministic tests: big enough to
/// exercise seeding + climb + shrink, small enough for Sanitize CI.
AdvSearchConfig small_config(const std::string& allocator) {
  AdvSearchConfig cfg;
  cfg.allocator = allocator;
  cfg.updates = 80;
  cfg.iterations = 25;
  cfg.seed = 3;
  return cfg;
}

// --- Planted-adversary recovery --------------------------------------

// A hand-planted <= 30-update adversary must survive the whole pipeline:
// the search's found ratio can only improve on it, and the shrunk
// reproducer retains >= 90% of the found ratio (the ISSUE's acceptance
// bar for the shrinker).
//
// The plant is folklore's textbook worst case, built by hand: fill to the
// budget with band-minimum items, then repeatedly free two *scattered*
// slots and insert one gap-defeating larger item — no single gap fits it,
// so the compacting allocator drags the whole heap along every time.
Sequence planted_folklore_adversary(Tick capacity, double eps) {
  const Tick small = static_cast<Tick>(eps * static_cast<double>(capacity));
  const Tick big = small + small / 2 + 1;  // defeats any one freed slot
  Sequence seq;
  seq.capacity = capacity;
  seq.eps = eps;
  seq.eps_ticks = small;
  const std::size_t fill = 15;  // fill * small == (1 - eps) * capacity
  for (std::size_t i = 1; i <= fill; ++i) {
    seq.updates.push_back(Update::insert(i, small));
  }
  // Scattered pairs: never adjacent in the compacted layout.
  const ItemId pairs[3][2] = {{1, 3}, {5, 7}, {9, 11}};
  for (std::size_t c = 0; c < 3; ++c) {
    seq.updates.push_back(Update::erase(pairs[c][0], small));
    seq.updates.push_back(Update::erase(pairs[c][1], small));
    seq.updates.push_back(Update::insert(100 + c, big));
  }
  return seq;
}

TEST(PerfAdv, PlantedAdversaryRecovered) {
  constexpr Tick kCap = Tick{1} << 20;
  constexpr double kEps = 1.0 / 16;

  Sequence planted = planted_folklore_adversary(kCap, kEps);
  ASSERT_LE(planted.size(), 30u);
  planted.check_well_formed();

  AdvSearchConfig cfg;
  cfg.allocator = "folklore-compact";
  cfg.capacity = kCap;
  cfg.eps = kEps;
  cfg.updates = 16;
  cfg.iterations = 30;
  cfg.seed = 11;
  // Seed the zoo from churn alone so the planted fragmenter is the only
  // strongly adversarial structure in the initial population.
  cfg.scenarios = {"churn"};
  cfg.extra_seeds = {planted};

  const std::uint64_t master = target_seed(cfg.seed, cfg.allocator);
  const double planted_ratio =
      evaluate_adversary(planted, cfg.allocator, cfg.engine,
                         iteration_seed(master, 0))
          .ratio;
  ASSERT_GT(planted_ratio, 0.0);

  const AdvResult r = run_adv_search(cfg);
  // The planted seed joins the population, so the found best dominates it
  // and beats the churn-only zoo baseline.
  EXPECT_GE(r.found_ratio, planted_ratio);
  EXPECT_GT(r.found_ratio, r.baseline_ratio);
  EXPECT_GT(planted_ratio, r.baseline_ratio)
      << "churn baseline unexpectedly beats the planted fragmenter";
  // Cost-preserving shrink: >= 90% of the found ratio retained.
  EXPECT_GE(r.shrunk_ratio + 1e-9, 0.9 * r.found_ratio);
  EXPECT_LE(r.shrunk_updates, r.original_updates);
  r.adversary.check_well_formed();
}

// --- Determinism ------------------------------------------------------

// A campaign's results are a pure function of (seed, allocator); the
// thread count must change only the wall clock.
TEST(PerfAdv, CampaignThreadCountInvariant) {
  AdvCampaignConfig cfg;
  cfg.base = small_config("folklore-compact");
  cfg.allocators = {"folklore-compact", "folklore-windowed", "simple"};

  cfg.threads = 1;
  const AdvCampaign serial = run_adv_campaign(cfg);
  cfg.threads = 3;
  const AdvCampaign parallel = run_adv_campaign(cfg);

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const AdvResult& a = serial.results[i];
    const AdvResult& b = parallel.results[i];
    EXPECT_EQ(a.allocator, b.allocator);
    EXPECT_EQ(a.found_ratio, b.found_ratio) << a.allocator;
    EXPECT_EQ(a.baseline_ratio, b.baseline_ratio) << a.allocator;
    EXPECT_EQ(a.shrunk_ratio, b.shrunk_ratio) << a.allocator;
    EXPECT_EQ(a.evaluations, b.evaluations) << a.allocator;
    ASSERT_EQ(a.adversary.size(), b.adversary.size()) << a.allocator;
    for (std::size_t u = 0; u < a.adversary.size(); ++u) {
      ASSERT_EQ(a.adversary.updates[u].id, b.adversary.updates[u].id);
      ASSERT_EQ(a.adversary.updates[u].size, b.adversary.updates[u].size);
    }
  }
}

// Same config, run twice: bit-identical results.
TEST(PerfAdv, SearchIsReproducible) {
  const AdvSearchConfig cfg = small_config("folklore-windowed");
  const AdvResult a = run_adv_search(cfg);
  const AdvResult b = run_adv_search(cfg);
  EXPECT_EQ(a.found_ratio, b.found_ratio);
  EXPECT_EQ(a.shrunk_ratio, b.shrunk_ratio);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// --- Corpus round trip ------------------------------------------------

// Persisted adversaries reload with the exact recorded ratio: the trace
// header carries (allocator, engine, seed, ratio), the replay re-derives
// the allocator randomness from the metadata alone, and the re-realized
// ratio is bit-equal to the recorded one.
TEST(PerfAdv, CorpusReplayIsBitExact) {
  TempDir dir("corpus");
  AdvCampaignConfig cfg;
  cfg.base = small_config("folklore-compact");
  cfg.allocators = {"folklore-compact", "simple"};
  cfg.corpus_dir = dir.path();

  const AdvCampaign campaign = run_adv_campaign(cfg);
  ASSERT_EQ(campaign.corpus_paths.size(), 2u);
  for (const std::string& path : campaign.corpus_paths) {
    ASSERT_FALSE(path.empty());
    const CorpusEntry entry = load_corpus_entry(path);
    EXPECT_EQ(entry.kind, kAdvCorpusKind);
    EXPECT_EQ(entry.engine, "release");
    EXPECT_GT(entry.ratio, 0.0);
  }

  const std::vector<AdvReplay> replays =
      replay_adversaries(dir.path(), /*retain=*/0.999);
  ASSERT_EQ(replays.size(), 2u);
  for (std::size_t i = 0; i < replays.size(); ++i) {
    EXPECT_TRUE(replays[i].ok) << replays[i].path;
    // 17-significant-digit round trip: bit-equal, not merely close.
    EXPECT_EQ(replays[i].replayed_ratio, replays[i].recorded_ratio)
        << replays[i].path;
    EXPECT_EQ(replays[i].recorded_ratio,
              campaign.results[i].shrunk_ratio)
        << replays[i].path;
  }
}

// The committed regression corpus: every shrunk adversary under
// ci/adversaries/ must keep realizing its recorded ratio (an allocator
// change that quietly *improves* on a known adversary is fine; one that
// regresses the recorded ratio fails here before it reaches CI's
// campaign smoke).
TEST(PerfAdv, CommittedAdversariesHoldTheirRatios) {
  const std::string dir =
      std::string(MEMREAL_SOURCE_DIR) + "/ci/adversaries";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  const std::vector<AdvReplay> replays =
      replay_adversaries(dir, /*retain=*/0.99);
  ASSERT_GE(replays.size(), 3u);
  for (const AdvReplay& r : replays) {
    EXPECT_TRUE(r.ok) << r.path << ": replayed " << r.replayed_ratio
                      << " vs recorded " << r.recorded_ratio;
    EXPECT_LT(r.replayed_ratio, r.budget_ceiling) << r.path;
  }
}

// --- Scenario zoo -----------------------------------------------------

// Every registry allocator must have at least one compatible scenario at
// its search eps, and each compatible scenario must generate a
// well-formed sequence whose shape the allocator's own predicate
// accepts.
TEST(PerfAdv, ZooServesEveryRegistryAllocator) {
  constexpr Tick kCap = Tick{1} << 40;
  for (const AllocatorInfo& info : allocator_infos()) {
    const double eps = adv_search_eps(info, 0.0, kCap);
    EXPECT_LE(eps, info.max_eps) << info.name;
    const std::vector<std::string> compat =
        compatible_scenarios(info, eps, kCap);
    EXPECT_FALSE(compat.empty()) << info.name;
    for (const std::string& name : compat) {
      const ScenarioParams p =
          scenario_params_for(info, eps, kCap, /*updates=*/64, /*seed=*/7);
      const Sequence seq = make_scenario(name, p);
      seq.check_well_formed();
      EXPECT_GT(seq.size(), 0u) << info.name << "/" << name;
      const ScenarioInfo* s = find_scenario(name);
      ASSERT_NE(s, nullptr);
      std::string why;
      EXPECT_TRUE(info.serves(scenario_shape(*s, p), eps, kCap, &why))
          << info.name << "/" << name << ": " << why;
    }
  }
}

// An incompatible (scenario, allocator) pair is rejected up front with a
// reason, never mid-run: SIMPLE's band spans one doubling, so the
// Bender-style ladder cannot fit.
TEST(PerfAdv, IncompatibleScenarioIsRejectedWithReason) {
  const AllocatorInfo simple = allocator_info("simple");
  const std::string why = scenario_incompatibility(
      "db_page_churn", simple, simple.default_eps, Tick{1} << 40);
  EXPECT_FALSE(why.empty());
  EXPECT_NE(why.find("simple"), std::string::npos);

  AdvSearchConfig cfg = small_config("simple");
  cfg.scenarios = {"db_page_churn"};
  EXPECT_THROW((void)run_adv_search(cfg), InvariantViolation);
}

// The eps auto-bump: tinyslab-family bands need ~eps^-4 fill items, so
// the search eps doubles (never past the registry ceiling) until zoo
// fills are feasible; an explicit request always wins.
TEST(PerfAdv, SearchEpsRespectsCeilingAndRequests) {
  constexpr Tick kCap = Tick{1} << 40;
  for (const AllocatorInfo& info : allocator_infos()) {
    const double eps = adv_search_eps(info, 0.0, kCap);
    EXPECT_GE(eps, info.default_eps) << info.name;
    EXPECT_LE(eps, info.max_eps) << info.name;
    EXPECT_EQ(adv_search_eps(info, 1.0 / 64, kCap), 1.0 / 64) << info.name;
  }
  // flexhash's hashed placement caps eps at 1/16; the bump must stop
  // there even though its tiny band would prefer a higher eps.
  const AllocatorInfo flexhash = allocator_info("flexhash");
  EXPECT_EQ(adv_search_eps(flexhash, 0.0, kCap), flexhash.max_eps);
}

}  // namespace
}  // namespace memreal
