// Tests for the observability subsystem (src/obs): counter striping,
// gauge high-water marks, log-bucketed histogram boundary properties and
// merge semantics, the registry kill switch (including the
// zero-allocation guarantee on both the enabled and disabled mutator
// paths), snapshot round-trips through the repo's own JSON parser, the
// trace ring + logical clock, and the end-to-end wiring invariants: cell
// counters equal RunStats tick-for-tick, and serve_deterministic stays
// bit-identical to the batch ShardedEngine with tracing + metrics on.
// `ctest -L obs` runs this suite alone; CI also runs it under ASan/UBSan
// and ThreadSanitizer.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/run_stats.h"
#include "serve/mpsc_queue.h"
#include "serve/serving_engine.h"
#include "shard/sharded_engine.h"
#include "testing.h"
#include "util/json.h"
#include "workload/churn.h"

// -- allocation counter -----------------------------------------------------
// Global operator new/delete overrides so the suite can assert that
// metric mutators never allocate.  Counting is a relaxed atomic bump;
// storage still comes from malloc/free so ASan's interceptors keep
// working underneath.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; the replacement operator new above allocates with malloc, so the
// pairing is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace memreal {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricLabels;
using obs::MetricRegistry;
using obs::ScopedSpan;
using obs::SpanPhase;
using obs::TraceSession;

constexpr double kEps = 1.0 / 64;
constexpr Tick kShardCap = Tick{1} << 30;

Sequence obs_churn(std::size_t shards, std::size_t updates,
                   std::uint64_t seed) {
  ChurnConfig c;
  c.capacity = kShardCap * shards;
  c.eps = kEps;
  c.min_size = static_cast<Tick>(kEps * static_cast<double>(kShardCap));
  c.max_size =
      static_cast<Tick>(2 * kEps * static_cast<double>(kShardCap)) - 1;
  c.target_load = 0.6;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

void expect_same_layout(const LayoutStore& a, const LayoutStore& b) {
  const auto la = a.snapshot();
  const auto lb = b.snapshot();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].id, lb[i].id);
    EXPECT_EQ(la[i].offset, lb[i].offset);
    EXPECT_EQ(la[i].size, lb[i].size);
    EXPECT_EQ(la[i].extent, lb[i].extent);
  }
}

ShardedConfig obs_config(MetricRegistry* reg, const std::string& engine,
                         std::size_t shards, bool arena = false) {
  ShardedConfig c;
  c.allocator = "simple";
  c.engine = engine;
  c.arena = arena;
  c.params.eps = kEps;
  c.params.seed = 1;
  c.shards = shards;
  c.shard_capacity = arena ? Tick{1} << 22 : kShardCap;
  c.eps = kEps;
  c.metrics = reg;
  c.workload_label = "churn";
  return c;
}

// -- counters / gauges ------------------------------------------------------

TEST(ObsCounter, AccumulatesAcrossConcurrentThreads) {
  MetricRegistry reg;
  Counter* c = reg.counter("test_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEach = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (std::uint64_t i = 0; i < kEach; ++i) c->add(2);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), 2 * kThreads * kEach);
}

TEST(ObsGauge, TracksValueAndLifetimeHighWater) {
  MetricRegistry reg;
  Gauge* g = reg.gauge("depth");
  g->set(3);
  g->set(7);
  g->set(2);
  EXPECT_EQ(g->value(), 2);
  EXPECT_EQ(g->high_water(), 7);
  g->add(10);
  EXPECT_EQ(g->value(), 12);
  EXPECT_EQ(g->high_water(), 12);
  g->reset();
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->high_water(), 0);
}

TEST(ObsRegistry, SameNameAndLabelsYieldSameInstrument) {
  MetricRegistry reg;
  MetricLabels a;
  a.allocator = "geo";
  a.shard = 3;
  MetricLabels b = a;
  EXPECT_EQ(reg.counter("x_total", a), reg.counter("x_total", b));
  b.shard = 4;
  EXPECT_NE(reg.counter("x_total", a), reg.counter("x_total", b));
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsPointersValid) {
  MetricRegistry reg;
  Counter* c = reg.counter("y_total");
  Histogram* h = reg.histogram("y_hist");
  c->add(5);
  h->record(9);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.counter("y_total"), c);
  EXPECT_EQ(reg.histogram("y_hist"), h);
  c->add(1);
  EXPECT_EQ(c->value(), 1u);
}

// -- histogram boundary properties ------------------------------------------

TEST(ObsHistogram, BucketBoundsPartitionTheValueSpace) {
  // Every bucket's own bounds land back in that bucket, and adjacent
  // buckets tile the space with no gap or overlap.
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b) << b;
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_hi(b - 1) + 1, Histogram::bucket_lo(b))
          << b;
    }
  }
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(ObsHistogram, EveryRecordedValueLandsInItsContainingBucket) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("prop");
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 2'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t b = Histogram::bucket_of(x);
    EXPECT_GE(x, Histogram::bucket_lo(b));
    EXPECT_LE(x, Histogram::bucket_hi(b));
    h->record(x);
  }
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    total += h->bucket_count(b);
  }
  EXPECT_EQ(total, h->count());
  EXPECT_EQ(h->count(), 2'000u);
}

TEST(ObsHistogram, MergeEqualsSingleStream) {
  MetricRegistry reg;
  Histogram* a = reg.histogram("a");
  Histogram* b = reg.histogram("b");
  Histogram* all = reg.histogram("all");
  std::uint64_t x = 42;
  for (int i = 0; i < 1'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t v = x >> 20;
    ((i % 2 == 0) ? a : b)->record(v);
    all->record(v);
  }
  a->merge(*b);
  EXPECT_EQ(a->count(), all->count());
  EXPECT_EQ(a->sum(), all->sum());
  for (std::size_t bk = 0; bk < Histogram::kBuckets; ++bk) {
    EXPECT_EQ(a->bucket_count(bk), all->bucket_count(bk)) << bk;
  }
}

TEST(ObsHistogram, QuantileBoundIsAConservativeBucketCeiling) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("q");
  EXPECT_EQ(h->quantile_bound(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) h->record(v);
  // The p50 sample is 50; its bucket [32, 63] upper bound is 63.
  EXPECT_EQ(h->quantile_bound(0.5), 63u);
  EXPECT_EQ(h->quantile_bound(1.0),
            Histogram::bucket_hi(Histogram::bucket_of(100)));
  EXPECT_GE(h->quantile_bound(1.0), 100u);
}

// -- kill switch / allocation-free hot path ---------------------------------

TEST(ObsKillSwitch, DisabledMutatorsAreDroppedAndReenableWorks) {
  MetricRegistry reg;
  Counter* c = reg.counter("k_total");
  Histogram* h = reg.histogram("k_hist");
  Gauge* g = reg.gauge("k_gauge");
  reg.set_enabled(false);
  EXPECT_FALSE(reg.enabled());
  c->add(7);
  h->record(7);
  g->set(7);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(g->value(), 0);
  reg.set_enabled(true);
  c->add(7);
  EXPECT_EQ(c->value(), 7u);
}

TEST(ObsKillSwitch, MutatorsNeverAllocateOnEitherPath) {
  MetricRegistry reg;
  MetricLabels l;
  l.allocator = "simple";
  l.shard = 0;
  Counter* c = reg.counter("na_total", l);
  Histogram* h = reg.histogram("na_hist", l);
  Gauge* g = reg.gauge("na_gauge", l);
  for (const bool enabled : {true, false}) {
    reg.set_enabled(enabled);
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 10'000; ++i) {
      c->add(i);
      h->record(i);
      g->set(static_cast<std::int64_t>(i));
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
        << "mutators allocated with enabled=" << enabled;
  }
}

// -- snapshots ---------------------------------------------------------------

TEST(ObsSnapshot, JsonRoundTripsThroughParser) {
  MetricRegistry reg;
  MetricLabels l;
  l.allocator = "geo";
  l.engine = "release";
  l.shard = 1;
  l.workload = "churn";
  reg.counter("rt_total", l)->add(11);
  reg.gauge("rt_gauge", l)->set(4);
  reg.histogram("rt_hist", l)->record(5);
  const Json parsed = Json::parse(reg.snapshot_json().dump(2));
  const Json& metrics = parsed.at("metrics");
  std::size_t seen = 0;
  for (const auto& [key, m] : metrics.items()) {
    (void)key;
    ++seen;
    const std::string name = m.at("name").as_string();
    EXPECT_EQ(m.at("labels").at("allocator").as_string(), "geo");
    EXPECT_EQ(m.at("labels").at("shard").as_u64(), 1u);
    if (name == "rt_total") {
      EXPECT_EQ(m.at("kind").as_string(), "counter");
      EXPECT_EQ(m.at("value").as_u64(), 11u);
    } else if (name == "rt_gauge") {
      EXPECT_DOUBLE_EQ(m.at("high_water").as_double(), 4.0);
    } else if (name == "rt_hist") {
      EXPECT_EQ(m.at("count").as_u64(), 1u);
      EXPECT_EQ(m.at("sum").as_u64(), 5u);
    }
  }
  EXPECT_EQ(seen, 3u);
}

TEST(ObsSnapshot, PrometheusTextHasCumulativeBucketsAndTotals) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("pm_hist");
  h->record(1);
  h->record(2);
  h->record(4);
  reg.counter("pm_total")->add(3);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE pm_total counter"), std::string::npos);
  EXPECT_NE(text.find("pm_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pm_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("pm_hist_sum 7"), std::string::npos);
  EXPECT_NE(text.find("pm_hist_count 3"), std::string::npos);
}

TEST(ObsSnapshot, SummaryTableMentionsEveryInstrument) {
  MetricRegistry reg;
  reg.counter("st_total")->add(2);
  reg.gauge("st_gauge")->set(9);
  const std::string table = reg.summary_table();
  EXPECT_NE(table.find("st_total"), std::string::npos);
  EXPECT_NE(table.find("st_gauge"), std::string::npos);
  EXPECT_NE(table.find("high water"), std::string::npos);
}

// -- trace sessions ----------------------------------------------------------

TEST(ObsTrace, ChromeJsonRoundTripsWithLogicalClock) {
  TraceSession& trace = TraceSession::global();
  trace.start(TraceSession::Clock::kLogical, 64);
  {
    ScopedSpan route(SpanPhase::kRoute, 2);
    ScopedSpan apply(SpanPhase::kApply, 2);
  }
  trace.stop();
  ASSERT_EQ(trace.event_count(), 2u);
  const Json doc = Json::parse(trace.chrome_json());
  EXPECT_EQ(doc.at("clock").as_string(), "logical");
  std::size_t events = 0;
  for (const auto& [key, e] : doc.at("traceEvents").items()) {
    (void)key;
    ++events;
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "memreal");
    EXPECT_EQ(e.at("args").at("shard").as_u64(), 2u);
    const std::string name = e.at("name").as_string();
    EXPECT_TRUE(name == "route" || name == "apply") << name;
  }
  EXPECT_EQ(events, 2u);
  trace.clear();
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  TraceSession& trace = TraceSession::global();
  trace.start(TraceSession::Clock::kLogical, 8);
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span(SpanPhase::kValidate, 0);
  }
  trace.stop();
  EXPECT_EQ(trace.event_count(), 8u);
  EXPECT_EQ(trace.dropped(), 12u);
  trace.clear();
}

TEST(ObsTrace, InactiveSessionRecordsNothing) {
  TraceSession& trace = TraceSession::global();
  trace.clear();
  ASSERT_FALSE(trace.active());
  {
    ScopedSpan span(SpanPhase::kApply, 1);
  }
  EXPECT_EQ(trace.event_count(), 0u);
}

// -- wiring invariants --------------------------------------------------------

TEST(ObsWiring, CellCountersEqualRunStatsTickForTick) {
  MetricRegistry reg;
  for (const std::string engine : {"validated", "release"}) {
    reg.reset();
    ShardedConfig config = obs_config(&reg, engine, 2);
    const Sequence seq = obs_churn(2, 600, 7);
    ShardedEngine sharded(config);
    const ShardedRunStats stats = sharded.run(seq);
    sharded.audit();
    std::uint64_t updates = 0;
    std::uint64_t moved = 0;
    for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
      MetricLabels l;
      l.allocator = "simple";
      l.engine = engine;
      l.shard = static_cast<int>(s);
      l.workload = "churn";
      const RunStats& ps = stats.per_shard[s];
      EXPECT_EQ(reg.counter("memreal_cell_updates_total", l)->value(),
                ps.updates);
      EXPECT_EQ(reg.counter("memreal_cell_inserts_total", l)->value(),
                ps.inserts);
      EXPECT_EQ(reg.counter("memreal_cell_deletes_total", l)->value(),
                ps.deletes);
      EXPECT_EQ(reg.counter("memreal_cell_moved_ticks_total", l)->value(),
                static_cast<std::uint64_t>(ps.moved_mass));
      EXPECT_EQ(reg.counter("memreal_cell_update_ticks_total", l)->value(),
                static_cast<std::uint64_t>(ps.update_mass));
      EXPECT_EQ(reg.histogram("memreal_cell_cost", l)->count(), ps.updates);
      updates += ps.updates;
      moved += static_cast<std::uint64_t>(ps.moved_mass);
    }
    EXPECT_EQ(updates, stats.global.updates) << engine;
    EXPECT_EQ(moved, static_cast<std::uint64_t>(stats.global.moved_mass))
        << engine;
  }
}

TEST(ObsWiring, ArenaCountersTrackByteMovement) {
  MetricRegistry reg;
  ShardedConfig config = obs_config(&reg, "validated", 2, /*arena=*/true);
  // Arena cells are 2^22 ticks; size the churn to their geometry.
  ChurnConfig c;
  c.capacity = config.shard_capacity * 2;
  c.eps = kEps;
  c.min_size =
      static_cast<Tick>(kEps * static_cast<double>(config.shard_capacity));
  c.max_size = static_cast<Tick>(
                   2 * kEps * static_cast<double>(config.shard_capacity)) -
               1;
  c.target_load = 0.6;
  c.churn_updates = 400;
  c.seed = 11;
  ShardedEngine sharded(config);
  const ShardedRunStats stats = sharded.run(make_churn(c));
  sharded.audit();
  std::uint64_t cell_bytes = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t payload_moves = 0;
  for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
    MetricLabels l;
    l.allocator = "simple";
    l.engine = "validated+arena";
    l.shard = static_cast<int>(s);
    l.workload = "churn";
    cell_bytes += reg.counter("memreal_cell_moved_bytes_total", l)->value();
    arena_bytes += reg.counter("memreal_arena_moved_bytes_total", l)->value();
    payload_moves +=
        reg.counter("memreal_arena_payload_moves_total", l)->value();
  }
  EXPECT_EQ(cell_bytes, static_cast<std::uint64_t>(stats.global.moved_bytes));
  EXPECT_GT(arena_bytes, 0u);
  EXPECT_GT(payload_moves, 0u);
}

TEST(ObsWiring, ServeQueueMetricsCoverEveryRequest) {
  MetricRegistry reg;
  ShardedConfig config = obs_config(&reg, "validated", 2);
  const Sequence seq = obs_churn(2, 500, 13);
  std::uint64_t waits = 0;
  std::size_t high_water = 0;
  {
    ServingEngine engine(config);
    for (const Update& u : seq.updates) (void)engine.submit(u);
    engine.drain();
    engine.audit();
    for (std::size_t s = 0; s < 2; ++s) {
      MetricLabels l;
      l.allocator = "simple";
      l.engine = "validated";
      l.shard = static_cast<int>(s);
      l.workload = "churn";
      waits += reg.histogram("memreal_serve_queue_wait_us", l)->count();
      high_water = std::max(high_water, engine.queue_high_water(s));
    }
    engine.stop();
  }
  EXPECT_EQ(waits, seq.updates.size());
  EXPECT_GE(high_water, 1u);
}

TEST(ObsWiring, ServeDeterministicBitIdenticalWithTracingAndMetricsOn) {
  // The acceptance invariant: arming the logical-clock trace session and
  // wiring the metric registry must not perturb serve_deterministic.
  const Sequence seq = obs_churn(2, 500, 17);
  ShardedConfig plain = obs_config(nullptr, "validated", 2);
  ShardedEngine batch(plain);
  const ShardedRunStats want = batch.run(seq);
  batch.audit();

  MetricRegistry reg;
  ShardedConfig wired = obs_config(&reg, "validated", 2);
  TraceSession& trace = TraceSession::global();
  trace.start(TraceSession::Clock::kLogical);
  ShardedRunStats got;
  {
    ServingEngine serve(wired);
    (void)serve_deterministic(serve, seq, /*lanes=*/3, 18);
    got = serve.stats();
    serve.audit();
    for (std::size_t s = 0; s < batch.shard_count(); ++s) {
      expect_same_layout(batch.memory(s), serve.sharded().memory(s));
    }
    serve.stop();
  }
  trace.stop();
  ASSERT_EQ(got.per_shard.size(), want.per_shard.size());
  EXPECT_EQ(got.global.updates, want.global.updates);
  EXPECT_EQ(got.global.moved_mass, want.global.moved_mass);
  EXPECT_EQ(got.global.update_mass, want.global.update_mass);
  for (std::size_t s = 0; s < want.per_shard.size(); ++s) {
    EXPECT_EQ(got.per_shard[s].updates, want.per_shard[s].updates);
    EXPECT_EQ(got.per_shard[s].moved_mass, want.per_shard[s].moved_mass);
    EXPECT_EQ(got.per_shard[s].cost.sum(), want.per_shard[s].cost.sum());
    EXPECT_EQ(got.per_shard[s].cost.variance(),
              want.per_shard[s].cost.variance());
  }
  EXPECT_GT(trace.event_count(), 0u);
  trace.clear();
}

// -- satellites ---------------------------------------------------------------

TEST(ObsSatellite, MpscQueueTracksDepthAndLifetimeHighWater) {
  MpscQueue<int> q;
  std::size_t depth = 0;
  q.push(1, &depth);
  EXPECT_EQ(depth, 1u);
  q.push(2, &depth);
  q.push(3, &depth);
  EXPECT_EQ(depth, 3u);
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.pushed(), 3u);
  std::vector<int> got;
  ASSERT_TRUE(q.pop_all(got));
  q.push(4, &depth);
  EXPECT_EQ(depth, 1u);
  EXPECT_EQ(q.high_water(), 3u);  // lifetime, not current
  EXPECT_EQ(q.pushed(), 4u);
}

TEST(ObsSatellite, RunStatsToJsonRoundTrips) {
  RunStats stats;
  stats.record(/*is_insert=*/true, /*update_size=*/10, /*moved=*/30,
               /*moved_bytes=*/240);
  stats.record(/*is_insert=*/false, /*update_size=*/5, /*moved=*/10,
               /*moved_bytes=*/80);
  const Json parsed = Json::parse(stats.to_json().dump(2));
  EXPECT_EQ(parsed.at("updates").as_u64(), 2u);
  EXPECT_EQ(parsed.at("inserts").as_u64(), 1u);
  EXPECT_EQ(parsed.at("deletes").as_u64(), 1u);
  EXPECT_EQ(parsed.at("moved_mass").as_u64(), 40u);
  EXPECT_EQ(parsed.at("update_mass").as_u64(), 15u);
  EXPECT_EQ(parsed.at("moved_bytes").as_u64(), 320u);
  EXPECT_DOUBLE_EQ(parsed.at("mean_cost").as_double(), stats.mean_cost());
  EXPECT_DOUBLE_EQ(parsed.at("ratio_cost").as_double(), 40.0 / 15.0);
  EXPECT_GT(parsed.at("cost_quantiles").at("p50").as_double(), 0.0);
}

}  // namespace
}  // namespace memreal
