// Lockstep differential suite for the release engine (ctest -L release).
//
// The release fast path (SlabStore + ReleaseEngine) performs no per-update
// validation — THESE tests are its correctness story.  Every registry
// allocator is driven through identical sequences on a validated cell and
// a release cell in lockstep, asserting:
//
//   * bit-identical per-update costs (exact double equality — both
//     engines compute moved/size from integer tick masses),
//   * bit-identical layouts (full snapshot: id, offset, size, extent, in
//     offset order) at every comparison point and at run end,
//   * identical O(1) model counters every step (item_count, live_mass,
//     extent_mass, span_end, total_moved),
//   * identical RunStats on all deterministic fields.
//
// Workload shapes: per-allocator admissible churn (every registry name),
// sawtooth fill/drain cycles, multi-tenant Zipf, and adversarial near-full
// load — plus fragmenter stress for the universal folklore baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "harness/cell.h"
#include "harness/validated_run.h"
#include "mem/memory.h"
#include "release/release_cell.h"
#include "release/slab_store.h"
#include "shard/sharded_engine.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/multi_tenant.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

void expect_same_layout(LayoutStore& validated, LayoutStore& release,
                        const std::string& where) {
  const std::vector<PlacedItem> a = validated.snapshot();
  const std::vector<PlacedItem> b = release.snapshot();
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << where << " item " << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << where << " item " << i;
    EXPECT_EQ(a[i].size, b[i].size) << where << " item " << i;
    EXPECT_EQ(a[i].extent, b[i].extent) << where << " item " << i;
  }
}

void expect_same_stats(RunStats validated, RunStats release) {
  EXPECT_EQ(validated.updates, release.updates);
  EXPECT_EQ(validated.inserts, release.inserts);
  EXPECT_EQ(validated.deletes, release.deletes);
  EXPECT_EQ(validated.moved_mass, release.moved_mass);
  EXPECT_EQ(validated.update_mass, release.update_mass);
  EXPECT_EQ(validated.cost.count(), release.cost.count());
  EXPECT_EQ(validated.cost.sum(), release.cost.sum());
  EXPECT_EQ(validated.cost.mean(), release.cost.mean());
  EXPECT_EQ(validated.cost.min(), release.cost.min());
  EXPECT_EQ(validated.cost.max(), release.cost.max());
  EXPECT_EQ(validated.insert_cost.count(), release.insert_cost.count());
  EXPECT_EQ(validated.insert_cost.sum(), release.insert_cost.sum());
  EXPECT_EQ(validated.delete_cost.count(), release.delete_cost.count());
  EXPECT_EQ(validated.delete_cost.sum(), release.delete_cost.sum());
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(validated.cost_quantiles.quantile(q),
              release.cost_quantiles.quantile(q))
        << "q=" << q;
  }
  // wall_seconds / decision_seconds are measured, not replayed — excluded.
}

CellConfig cell_config(const std::string& engine,
                       const std::string& allocator, const Sequence& seq,
                       double delta) {
  CellConfig c;
  c.engine = engine;
  c.allocator = allocator;
  c.params.eps = seq.eps;
  c.params.delta = delta;
  c.params.seed = 17;
  return c;
}

/// Drives both engines through `seq` update-for-update, checking costs and
/// O(1) counters at every step, layouts periodically and at the end, and
/// the full RunStats + a release-store audit at the end.
void lockstep(const std::string& allocator, const Sequence& seq,
              double delta = 0.0) {
  seq.check_well_formed();
  ValidatedCell validated(seq.capacity, seq.eps_ticks,
                          cell_config("validated", allocator, seq, delta));
  ReleaseCell release(seq.capacity, seq.eps_ticks,
                      cell_config("release", allocator, seq, delta));
  for (std::size_t i = 0; i < seq.updates.size(); ++i) {
    const Update& u = seq.updates[i];
    const double vc = validated.step(u);
    const double rc = release.step(u);
    ASSERT_EQ(vc, rc) << "cost diverged at update " << i;
    ASSERT_EQ(validated.memory().item_count(), release.memory().item_count())
        << "item count diverged at update " << i;
    ASSERT_EQ(validated.memory().live_mass(), release.memory().live_mass())
        << "live mass diverged at update " << i;
    ASSERT_EQ(validated.memory().extent_mass(),
              release.memory().extent_mass())
        << "extent mass diverged at update " << i;
    ASSERT_EQ(validated.memory().span_end(), release.memory().span_end())
        << "span diverged at update " << i;
    ASSERT_EQ(validated.memory().total_moved(),
              release.memory().total_moved())
        << "moved mass diverged at update " << i;
    if (i % 64 == 0) {
      expect_same_layout(validated.memory(), release.memory(),
                         "update " + std::to_string(i));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  expect_same_layout(validated.memory(), release.memory(), "final");
  expect_same_stats(validated.stats(), release.stats());
  validated.audit();
  release.audit();
}

TEST(Lockstep, ChurnEveryRegistryAllocator) {
  for (const auto& name : allocator_names()) {
    SCOPED_TRACE(name);
    const testing::RegimeCase c = testing::regime_case(name);
    const Sequence seq = testing::regime_sequence(c, kCap, 400, /*seed=*/23);
    ASSERT_GE(seq.size(), 400u);
    lockstep(name, seq, c.delta);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Lockstep, SawtoothFillDrainCycles) {
  for (const auto* name :
       {"folklore-compact", "folklore-windowed", "simple"}) {
    SCOPED_TRACE(name);
    SawtoothConfig c;
    c.capacity = kCap;
    c.eps = 1.0 / 32;
    c.high_load = 0.9;
    c.low_load = 0.1;
    c.teeth = 4;
    c.seed = 29;
    lockstep(name, make_sawtooth(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Lockstep, MultiTenantZipf) {
  for (const auto* name :
       {"folklore-compact", "folklore-windowed", "simple"}) {
    SCOPED_TRACE(name);
    MultiTenantConfig c;
    c.capacity = kCap;
    c.eps = 1.0 / 32;
    c.tenants = 4;
    c.zipf_s = 1.0;
    c.churn_updates = 500;
    c.seed = 31;
    lockstep(name, make_multi_tenant(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Lockstep, AdversarialNearFullLoad) {
  for (const auto* name :
       {"folklore-compact", "folklore-windowed", "simple"}) {
    SCOPED_TRACE(name);
    ChurnConfig c;
    c.capacity = kCap;
    c.eps = 1.0 / 32;
    c.min_size = kCap / 32;          // the simple band [eps, 2 eps)
    c.max_size = kCap / 16 - 1;
    c.target_load = 0.98;  // churn pinned just under the budget
    c.churn_updates = 500;
    c.seed = 37;
    lockstep(name, make_churn(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Lockstep, FragmenterOnUniversalBaselines) {
  for (const auto* name : {"folklore-compact", "folklore-windowed"}) {
    SCOPED_TRACE(name);
    FragmenterConfig c;
    c.capacity = kCap;
    c.eps = 1.0 / 32;
    c.seed = 41;
    lockstep(name, make_fragmenter(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A sharded run's routing is engine-independent, so the per-shard layouts
// of a release-engine run must be bit-identical to a validated run of the
// same config — the S>1 extension of the single-cell lockstep guarantee.
TEST(Lockstep, ShardedReleaseMatchesShardedValidated) {
  constexpr Tick kShardCap = Tick{1} << 40;
  constexpr std::size_t kShards = 4;
  MultiTenantConfig w;
  w.capacity = kShards * kShardCap;
  w.eps = 1.0 / 32;
  w.tenants = 4;
  w.zipf_s = 1.0;
  w.min_size = kShardCap / 32;      // band of *shard* capacity
  w.max_size = kShardCap / 16 - 1;
  w.churn_updates = 600;
  w.seed = 43;
  const Sequence seq = make_multi_tenant(w);

  ShardedConfig cfg;
  cfg.allocator = "simple";
  cfg.params.eps = 1.0 / 32;
  cfg.shards = kShards;
  cfg.shard_capacity = kShardCap;
  cfg.eps = 1.0 / 32;
  cfg.batch_size = 128;

  cfg.engine = "validated";
  ShardedEngine validated(cfg);
  const ShardedRunStats vs = validated.run(seq);

  cfg.engine = "release";
  ShardedEngine release(cfg);
  const ShardedRunStats rs = release.run(seq);

  for (std::size_t s = 0; s < kShards; ++s) {
    expect_same_layout(validated.memory(s), release.memory(s),
                       "shard " + std::to_string(s));
  }
  EXPECT_EQ(vs.global.updates, rs.global.updates);
  EXPECT_EQ(vs.global.moved_mass, rs.global.moved_mass);
  EXPECT_EQ(vs.global.update_mass, rs.global.update_mass);
  EXPECT_EQ(vs.fallback_routes, rs.fallback_routes);
  release.audit();
}

TEST(SlabStore, AuditCatchesPlantedCorruption) {
  const Sequence seq =
      make_simple_regime(kCap, 1.0 / 32, /*churn_updates=*/50, /*seed=*/7);
  ReleaseCell cell(seq.capacity, seq.eps_ticks,
                   cell_config("release", "folklore-compact", seq, 0.0));
  cell.run(seq.updates);
  cell.audit();  // healthy store passes
  ASSERT_GE(cell.memory().item_count(), 2u);
  // Shift the first item onto its right neighbor: the SoA record changes
  // but by_offset_/ends_ keep their stale view — exactly a slab bug.
  cell.memory().debug_corrupt_first_offset(1);
  EXPECT_THROW(cell.memory().audit(), InvariantViolation);
}

TEST(SlabStore, PointAndOrderedQueriesMatchMemorySemantics) {
  // Hand-driven store exercising the query surface on a known layout.
  SlabStore store(1 << 20, 1 << 10);
  store.begin_update(10, true);
  store.place(/*id=*/5, /*offset=*/100, /*size=*/10);
  store.end_update();
  store.begin_update(7, true);
  store.place(/*id=*/9, /*offset=*/200, /*size=*/7, /*extent=*/20);
  store.end_update();

  EXPECT_TRUE(store.contains(5));
  EXPECT_FALSE(store.contains(6));
  EXPECT_EQ(store.offset_of(9), 200u);
  EXPECT_EQ(store.extent_of(9), 20u);
  EXPECT_EQ(store.end_of(9), 220u);
  EXPECT_EQ(store.span_end(), 220u);
  EXPECT_EQ(store.live_mass(), 17u);
  EXPECT_EQ(store.extent_mass(), 30u);

  ASSERT_TRUE(store.item_at(105).has_value());
  EXPECT_EQ(store.item_at(105)->id, 5u);
  EXPECT_FALSE(store.item_at(110).has_value());  // extent ends at 110
  ASSERT_TRUE(store.item_at(219).has_value());
  EXPECT_EQ(store.item_at(219)->id, 9u);

  ASSERT_TRUE(store.first_at_or_after(101).has_value());
  EXPECT_EQ(store.first_at_or_after(101)->id, 9u);
  ASSERT_TRUE(store.last_before(200).has_value());
  EXPECT_EQ(store.last_before(200)->id, 5u);
  EXPECT_FALSE(store.last_before(100).has_value());

  const auto n = store.neighbors_of(5);
  EXPECT_FALSE(n.prev.has_value());
  ASSERT_TRUE(n.next.has_value());
  EXPECT_EQ(n.next->id, 9u);

  const auto in = store.items_in(0, 150);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].id, 5u);

  const auto gs = store.gaps();
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0], (std::pair<Tick, Tick>{0, 100}));
  EXPECT_EQ(gs[1], (std::pair<Tick, Tick>{110, 90}));

  store.begin_update(10, false);
  store.remove(5);
  store.end_update();
  EXPECT_FALSE(store.contains(5));
  EXPECT_EQ(store.item_count(), 1u);
  EXPECT_EQ(store.span_end(), 220u);
  store.audit();
}

TEST(SlabStore, BatchedRunAndResetExtentsMatchPerItemSemantics) {
  // The bulk apply_run / reset_extents overrides must charge and land
  // exactly like their per-item loops (the lockstep suites prove this at
  // scale; this pins the arithmetic on a hand-checked layout).
  SlabStore store(1 << 20, 1 << 10);
  store.begin_update(10, true);
  store.place(1, 0, 10);
  store.end_update();
  store.begin_update(10, true);
  store.place(2, 50, 10, /*extent=*/25);  // inflated
  store.end_update();
  store.begin_update(10, true);
  store.place(3, 100, 10);
  store.end_update();
  EXPECT_EQ(store.span_end(), 110u);
  EXPECT_EQ(store.extent_mass(), 45u);

  // Full-layout run in a new order (the SIMPLE-rebuild path): every item
  // moves, charges its true size, and the span is the run's end.
  const ItemId run1[] = {3, 1, 2};
  store.begin_update(1, false);
  const Tick end1 = store.apply_run(run1, 0);
  EXPECT_EQ(store.end_update(), 30u);  // three moves x size 10
  EXPECT_EQ(end1, 45u);                // 10 + 10 + 25 (extent-contiguous)
  EXPECT_EQ(store.span_end(), 45u);
  EXPECT_EQ(store.offset_of(3), 0u);
  EXPECT_EQ(store.offset_of(1), 10u);
  EXPECT_EQ(store.offset_of(2), 20u);
  store.audit();

  // Whole-layout extent revert in one pass: free, deflates the span.
  store.begin_update(1, false);
  store.reset_extents(run1);
  EXPECT_EQ(store.end_update(), 0u);
  EXPECT_EQ(store.extent_of(2), 10u);
  EXPECT_EQ(store.extent_mass(), 30u);
  EXPECT_EQ(store.span_end(), 30u);
  store.audit();

  // Partial run (the covering-compaction path): close the gap a removal
  // leaves; only the item that actually moves is charged.
  store.begin_update(10, false);
  store.remove(1);
  store.end_update();
  const ItemId run2[] = {2};
  store.begin_update(1, false);
  const Tick end2 = store.apply_run(run2, 10);
  EXPECT_EQ(store.end_update(), 10u);
  EXPECT_EQ(end2, 20u);
  EXPECT_EQ(store.offset_of(2), 10u);
  EXPECT_EQ(store.span_end(), 20u);
  store.audit();
}

TEST(SlabStore, IdMapSurvivesChurnAcrossGrowthAndDeletion) {
  // Enough distinct ids to force several open-addressed table growths and
  // long backward-shift chains; audit() cross-checks every probe.
  SlabStore store(Tick{1} << 40, Tick{1} << 20);
  std::vector<ItemId> live;
  for (ItemId id = 0; id < 500; ++id) {
    store.begin_update(4, true);
    store.place(id, id * 8, 4);
    store.end_update();
    live.push_back(id);
  }
  // Delete every third item, then re-insert with new ids.
  for (std::size_t i = 0; i < live.size(); i += 3) {
    store.begin_update(4, false);
    store.remove(live[i]);
    store.end_update();
  }
  for (ItemId id = 1000; id < 1200; ++id) {
    store.begin_update(4, true);
    store.place(id, id * 8, 4);
    store.end_update();
  }
  store.audit();
  EXPECT_EQ(store.item_count(), 500 - (500 + 2) / 3 + 200);
}

TEST(MakeCell, RejectsUnknownEngineNames) {
  CellConfig c;
  c.engine = "debug";
  c.allocator = "simple";
  EXPECT_THROW((void)make_cell(kCap, Tick{1} << 40, c), InvariantViolation);
}

TEST(MakeCell, EngineNamesMatchFactory) {
  for (const auto& engine : engine_names()) {
    CellConfig c;
    c.engine = engine;
    c.allocator = "folklore-compact";
    auto cell = make_cell(Tick{1} << 30, Tick{1} << 20, c);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->name(), "folklore-compact");
  }
}

}  // namespace
}  // namespace memreal
