// Shared helpers for the memreal test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "alloc/registry.h"
#include "core/engine.h"
#include "harness/cell.h"
#include "mem/memory.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"
#include "workload/sequence.h"

namespace memreal::testing {

/// A Memory wired for exhaustive validation: incremental checks plus a
/// full audit at every update.
inline Memory strict_memory(Tick capacity, double eps) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  // Eps::of, not a raw cast: it clamps tiny eps to >= 1 tick.
  return Memory(capacity, Eps::of(eps, capacity).ticks, policy);
}

/// Runs `allocator_name` over `seq` with full validation and per-update
/// allocator invariant checks; returns the stats.
inline RunStats run_with_invariants(const std::string& allocator_name,
                                    const Sequence& seq,
                                    std::uint64_t seed = 1,
                                    double delta = 0.0,
                                    std::size_t check_every = 1) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  AllocatorParams params;
  params.eps = seq.eps;
  params.delta = delta;
  params.seed = seed;
  auto alloc = make_allocator(allocator_name, mem, params);
  EngineOptions opts;
  opts.check_invariants_every = check_every;
  Engine engine(mem, *alloc, opts);
  RunStats stats = engine.run(seq.updates);
  mem.audit();
  alloc->check_invariants();
  return stats;
}

/// Runs `seq` through a cell of the given engine flavor ("validated" or
/// "release"), with a final full audit + allocator self-check; returns the
/// stats.  The engine-generic counterpart of run_with_invariants.
inline RunStats run_cell(const std::string& engine,
                         const std::string& allocator_name,
                         const Sequence& seq, std::uint64_t seed = 1,
                         double delta = 0.0) {
  CellConfig config;
  config.engine = engine;
  config.allocator = allocator_name;
  config.params.eps = seq.eps;
  config.params.delta = delta;
  config.params.seed = seed;
  auto cell = make_cell(seq.capacity, seq.eps_ticks, config);
  const RunStats stats = cell->run(seq.updates);
  cell->audit();
  return stats;
}

/// An allocator name with the eps/delta it should be smoke-run at.
struct RegimeCase {
  std::string allocator;
  double eps = 1.0 / 32;
  double delta = 0.0;
};

inline RegimeCase regime_case(const std::string& name) {
  RegimeCase c;
  c.allocator = name;
  if (name == "rsum") {
    c.eps = 1.0 / 256;
    c.delta = 1.0 / 128;
  }
  return c;
}

/// A ~`updates`-long churn workload inside the allocator's admissible size
/// regime.  Every registered allocator must have a mapping here — tests
/// that iterate allocator_names() fail on unmapped registrations, so new
/// names can never land without minimal coverage.
inline Sequence regime_sequence(const RegimeCase& c, Tick capacity,
                                std::size_t updates, std::uint64_t seed) {
  const std::string& name = c.allocator;
  if (name == "folklore-compact" || name == "folklore-windowed" ||
      name == "simple") {
    return make_simple_regime(capacity, c.eps, updates, seed);
  }
  if (name == "geo") {
    GeoRegimeConfig g;
    g.capacity = capacity;
    g.eps = c.eps;
    g.churn_updates = updates;
    g.huge_fraction = 0.05;
    g.seed = seed;
    return make_geo_regime(g);
  }
  if (name == "tinyslab" || name == "flexhash") {
    // Tiny-item churn: sizes in (0, eps^4] of capacity.
    const auto cap_d = static_cast<double>(capacity);
    const auto tiny_hi = static_cast<Tick>(std::pow(c.eps, 4.0) * cap_d);
    ChurnConfig cc;
    cc.capacity = capacity;
    cc.eps = c.eps;
    cc.min_size = std::max<Tick>(1, tiny_hi / 1024);
    cc.max_size = tiny_hi;
    cc.target_load =
        std::min(0.5, 2000.0 * static_cast<double>(cc.max_size) / cap_d);
    cc.churn_updates = updates;
    cc.seed = seed;
    return make_churn(cc);
  }
  if (name == "combined") {
    MixedTinyLargeConfig m;
    m.capacity = capacity;
    m.eps = c.eps;
    m.churn_updates = updates;
    m.seed = seed;
    return make_mixed_tiny_large(m);
  }
  if (name == "rsum") {
    RandomItemConfig r;
    r.capacity = capacity;
    r.eps = c.eps;
    r.delta = c.delta;
    r.churn_pairs = updates / 2;
    r.seed = seed;
    return make_random_item_sequence(r);
  }
  if (name == "discrete") {
    DiscreteChurnConfig d;
    d.capacity = capacity;
    d.eps = c.eps;
    d.churn_updates = updates;
    d.seed = seed;
    return make_discrete_churn(d);
  }
  ADD_FAILURE() << "allocator '" << name
                << "' is registered but has no regime workload; add one to "
                   "tests/testing.h (regime_sequence)";
  return Sequence{};
}

}  // namespace memreal::testing
