// Shared helpers for the memreal test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "workload/sequence.h"

namespace memreal::testing {

/// A Memory wired for exhaustive validation: incremental checks plus a
/// full audit at every update.
inline Memory strict_memory(Tick capacity, double eps) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  // Eps::of, not a raw cast: it clamps tiny eps to >= 1 tick.
  return Memory(capacity, Eps::of(eps, capacity).ticks, policy);
}

/// Runs `allocator_name` over `seq` with full validation and per-update
/// allocator invariant checks; returns the stats.
inline RunStats run_with_invariants(const std::string& allocator_name,
                                    const Sequence& seq,
                                    std::uint64_t seed = 1,
                                    double delta = 0.0,
                                    std::size_t check_every = 1) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  AllocatorParams params;
  params.eps = seq.eps;
  params.delta = delta;
  params.seed = seed;
  auto alloc = make_allocator(allocator_name, mem, params);
  EngineOptions opts;
  opts.check_invariants_every = check_every;
  Engine engine(mem, *alloc, opts);
  RunStats stats = engine.run(seq.updates);
  mem.audit();
  alloc->check_invariants();
  return stats;
}

}  // namespace memreal::testing
