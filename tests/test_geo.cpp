// GEO (Theorem 4.1): level structure, size classes, huge-item handling,
// swap/inflation, waste recovery, level-size invariant, cost shape.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/geo.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

GeoAllocator make_geo(LayoutStore& mem, double eps, std::uint64_t seed = 9) {
  GeoConfig c;
  c.eps = eps;
  c.seed = seed;
  return GeoAllocator(mem, c);
}

Sequence geo_seq(double eps, std::size_t updates, std::uint64_t seed,
                 double huge_fraction = 0.0) {
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.churn_updates = updates;
  c.seed = seed;
  c.huge_fraction = huge_fraction;
  return make_geo_regime(c);
}

TEST(Geo, StructureMatchesPaper) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  // ell = ceil(4.5 * log2(64)) = 27 levels.
  EXPECT_EQ(geo.level_count(), 27);
  // Huge threshold = sqrt(eps)/100.
  EXPECT_EQ(geo.huge_threshold(),
            static_cast<Tick>(std::sqrt(1.0 / 64) / 100.0 *
                              static_cast<double>(kCap)));
  // C = O(eps^-1/2 log eps^-1) classes; for eps = 1/64 about
  // log_{1.125}(eps^-4.5) ~ 160.
  EXPECT_GT(geo.class_count(), 100u);
  EXPECT_LT(geo.class_count(), 400u);
}

TEST(Geo, ClassOfSizeIsMonotone) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  std::size_t prev = 0;
  const Tick lo = static_cast<Tick>(std::pow(1.0 / 64, 5.0) *
                                    static_cast<double>(kCap));
  for (Tick s = lo; s < geo.huge_threshold(); s += (s / 7) + 1) {
    const std::size_t c = geo.class_of_size(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Geo, DeeperLevelsFitFewerItems) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  // j* is deeper for smaller classes.
  const std::size_t small_cls = geo.class_of_size(
      static_cast<Tick>(std::pow(1.0 / 64, 4.0) * static_cast<double>(kCap)));
  const std::size_t large_cls =
      geo.class_of_size(geo.huge_threshold() - 1);
  EXPECT_GT(geo.deepest_level_for_class(small_cls),
            geo.deepest_level_for_class(large_cls));
  EXPECT_GE(geo.deepest_level_for_class(large_cls), 1);
}

TEST(Geo, LayoutStaysContiguousFromZero) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  Engine engine(mem, geo);
  const Tick s = static_cast<Tick>(1e-4 * static_cast<double>(kCap));
  engine.step(Update::insert(1, s));
  engine.step(Update::insert(2, s + 100));
  engine.step(Update::insert(3, s + 7));
  // Rebuilds may reorder items, but the layout is contiguous from 0.
  EXPECT_EQ(mem.live_mass(), mem.span_end());
  const auto snap = mem.snapshot();
  EXPECT_EQ(snap.front().offset, 0u);
  geo.check_invariants();
}

TEST(Geo, HugeItemsCompactedAtStart) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  Engine engine(mem, geo);
  const Tick small = static_cast<Tick>(1e-3 * static_cast<double>(kCap));
  const Tick huge = geo.huge_threshold() * 2;
  engine.step(Update::insert(1, small));
  engine.step(Update::insert(2, huge));
  engine.step(Update::insert(3, small));
  engine.step(Update::insert(4, huge));
  // Both huge items occupy the prefix.
  const auto snap = mem.snapshot();
  EXPECT_EQ(snap[0].size, huge);
  EXPECT_EQ(snap[1].size, huge);
  geo.check_invariants();
  // Deleting a huge item compacts and keeps the prefix property.
  engine.step(Update::erase(2, huge));
  const auto snap2 = mem.snapshot();
  EXPECT_EQ(snap2[0].size, huge);
  geo.check_invariants();
}

TEST(Geo, SwapInflatesAndRecovers) {
  const double eps = 1.0 / 64;
  // Narrow band of large items: swaps are frequent and each wastes a large
  // class width, so waste recovery fires within a few thousand updates.
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.band_ratio = 4;
  c.churn_updates = 6000;
  c.seed = 3;
  const Sequence seq = make_geo_regime(c);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 64;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  GeoAllocator geo = make_geo(mem, eps);
  EngineOptions opts;
  opts.check_invariants_every = 64;
  Engine engine(mem, geo, opts);
  engine.run(seq.updates);
  // The run must have exercised waste recovery at least once...
  EXPECT_GT(geo.waste_recoveries(), 0u);
  // ...and a level rebuild fires on every non-huge update.
  EXPECT_GE(geo.level_rebuilds(), seq.updates.size() / 2);
}

TEST(Geo, WasteBoundedByEps) {
  const double eps = 1.0 / 64;
  const Sequence seq = geo_seq(eps, 800, 5);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  GeoAllocator geo = make_geo(mem, eps);
  Engine engine(mem, geo);
  for (const Update& u : seq.updates) {
    engine.step(u);
    // Inflation waste stays below eps at all times (checked exactly).
    EXPECT_LE(mem.extent_mass() - mem.live_mass(), mem.eps_ticks());
  }
}

TEST(Geo, ResizableBoundHolds) {
  const double eps = 1.0 / 64;
  const Sequence seq = geo_seq(eps, 800, 6, /*huge_fraction=*/0.05);
  const RunStats s = testing::run_with_invariants("geo", seq, 1, 0.0, 8);
  EXPECT_GT(s.updates, 0u);
}

TEST(Geo, RejectsTooSmallItems) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  GeoAllocator geo = make_geo(mem, 1.0 / 64);
  Engine engine(mem, geo);
  EXPECT_THROW(engine.step(Update::insert(1, 2)), InvariantViolation);
}

TEST(Geo, CapacityResolutionGuard) {
  // eps^5 * capacity must stay well above one tick.
  Memory mem = testing::strict_memory(1 << 20, 1.0 / 64);
  GeoConfig c;
  c.eps = 1.0 / 64;
  EXPECT_THROW(GeoAllocator(mem, c), InvariantViolation);
}

TEST(Geo, LevelItemCountsAreNested) {
  const double eps = 1.0 / 64;
  const Sequence seq = geo_seq(eps, 400, 8);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  GeoAllocator geo = make_geo(mem, eps);
  Engine engine(mem, geo);
  engine.run(seq.updates);
  for (int j = 2; j <= geo.level_count(); ++j) {
    EXPECT_LE(geo.level_item_count(j), geo.level_item_count(j - 1));
  }
}

// Parameterized sweep: full invariants across eps, seeds and huge mix.
struct GeoParam {
  double eps;
  std::uint64_t seed;
  double huge_fraction;
};

class GeoSweep : public ::testing::TestWithParam<GeoParam> {};

TEST_P(GeoSweep, InvariantsHold) {
  const auto [eps, seed, huge] = GetParam();
  const Sequence seq = geo_seq(eps, 600, seed, huge);
  const RunStats s = testing::run_with_invariants("geo", seq, seed, 0.0, 4);
  EXPECT_GT(s.updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeoSweep,
    ::testing::Values(GeoParam{1.0 / 16, 1, 0.0}, GeoParam{1.0 / 16, 2, 0.1},
                      GeoParam{1.0 / 64, 1, 0.0}, GeoParam{1.0 / 64, 2, 0.05},
                      GeoParam{1.0 / 64, 3, 0.2}, GeoParam{1.0 / 256, 1, 0.0},
                      GeoParam{1.0 / 256, 2, 0.05}));

TEST(Geo, PingPongSameSizeKeepsInvariants) {
  // Insert/delete ping-pong of one size hammers the deepest level's
  // threshold (always 1) and the swap/waste machinery.
  const double eps = 1.0 / 64;
  Memory mem = testing::strict_memory(kCap, eps);
  GeoAllocator geo = make_geo(mem, eps);
  Engine engine(mem, geo);
  const Tick s = static_cast<Tick>(5e-4 * static_cast<double>(kCap));
  // Background population of the same class.
  for (ItemId i = 1; i <= 30; ++i) engine.step(Update::insert(i, s + i));
  ItemId next = 100;
  for (int round = 0; round < 120; ++round) {
    engine.step(Update::insert(next, s + 500));
    engine.step(Update::erase(next, s + 500));
    ++next;
    if (round % 10 == 0) geo.check_invariants();
  }
  geo.check_invariants();
  EXPECT_EQ(mem.item_count(), 30u);
}

TEST(Geo, DeleteEveryOtherThenRefill) {
  const double eps = 1.0 / 64;
  Memory mem = testing::strict_memory(kCap, eps);
  GeoAllocator geo = make_geo(mem, eps);
  Engine engine(mem, geo);
  Rng rng(17);
  const Tick base = static_cast<Tick>(3e-4 * static_cast<double>(kCap));
  std::vector<std::pair<ItemId, Tick>> items;
  for (ItemId i = 1; i <= 60; ++i) {
    const Tick s = base + rng.next_below(base);
    items.emplace_back(i, s);
    engine.step(Update::insert(i, s));
  }
  for (std::size_t i = 0; i < items.size(); i += 2) {
    engine.step(Update::erase(items[i].first, items[i].second));
  }
  geo.check_invariants();
  for (ItemId i = 100; i < 130; ++i) {
    engine.step(Update::insert(i, base + rng.next_below(base)));
  }
  geo.check_invariants();
  EXPECT_EQ(mem.item_count(), 60u);
}

TEST(Geo, DeterministicThresholdAblationStillCorrect) {
  // Correctness must survive the ablation; only the adversarial cost
  // profile changes (bench T8a).
  const double eps = 1.0 / 64;
  SingleClassAttackConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.attack_pairs = 400;
  const Sequence seq = make_single_class_attack(c);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  GeoConfig gc;
  gc.eps = eps;
  gc.deterministic_thresholds = true;
  GeoAllocator geo(mem, gc);
  EngineOptions opts;
  opts.check_invariants_every = 8;
  Engine engine(mem, geo, opts);
  const RunStats s = engine.run(seq.updates);
  EXPECT_GT(s.updates, 0u);
}

}  // namespace
}  // namespace memreal
