// Tests for the sharded multi-cell engine: router policies, S = 1
// equivalence with the plain Engine, validated S > 1 runs, fallback
// routing, migration/rebalancing, and thread-count invariance.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "harness/validated_run.h"
#include "mem/memory.h"
#include "shard/router.h"
#include "shard/sharded_engine.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/multi_tenant.h"

namespace memreal {
namespace {

constexpr Tick kShardCap = Tick{1} << 30;
constexpr double kEps = 1.0 / 64;

Sequence shard_churn(std::size_t shards, std::size_t updates,
                     std::uint64_t seed, double target_load = 0.7) {
  ChurnConfig c;
  c.capacity = kShardCap * shards;
  c.eps = kEps;
  c.min_size = static_cast<Tick>(kEps * static_cast<double>(kShardCap));
  c.max_size = static_cast<Tick>(2 * kEps * static_cast<double>(kShardCap)) - 1;
  c.target_load = target_load;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

/// GEO's size-class boundaries need more resolution than 2^30 ticks at
/// this eps, so the cross-allocator equivalence test runs on wider cells.
constexpr Tick kWideShardCap = Tick{1} << 40;

/// Churn whose sizes come from the allocator's registered band over the
/// shard capacity, so any registry allocator can serve it.
Sequence admissible_churn(const std::string& allocator, std::size_t shards,
                          std::size_t updates, std::uint64_t seed) {
  const AllocatorInfo info = allocator_info(allocator);
  ChurnConfig c;
  c.capacity = kWideShardCap * shards;
  c.eps = kEps;
  c.min_size = info.sizes.min_size(kEps, kWideShardCap);
  c.max_size = info.sizes.max_size(kEps, kWideShardCap) - 1;
  c.target_load = 0.7;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

ShardedConfig shard_config(const std::string& allocator, std::size_t shards,
                           const std::string& router = "hash") {
  ShardedConfig c;
  c.allocator = allocator;
  c.params.eps = kEps;
  c.params.seed = 1;
  c.shards = shards;
  c.shard_capacity = kShardCap;
  c.eps = kEps;
  c.router = router;
  return c;
}

std::vector<PlacedItem> layout_of(const LayoutStore& mem) {
  return mem.snapshot();
}

void expect_same_layout(const LayoutStore& a, const LayoutStore& b) {
  const auto la = layout_of(a);
  const auto lb = layout_of(b);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].id, lb[i].id);
    EXPECT_EQ(la[i].offset, lb[i].offset);
    EXPECT_EQ(la[i].size, lb[i].size);
    EXPECT_EQ(la[i].extent, lb[i].extent);
  }
}

// -- Router policies --------------------------------------------------------

TEST(Router, HashIsDeterministicInRangeAndSpreads) {
  auto r1 = make_router("hash", 8);
  auto r2 = make_router("hash", 8);
  std::set<std::size_t> hit;
  for (ItemId id = 1; id <= 200; ++id) {
    const std::size_t s = r1->route(id, 64);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, r2->route(id, 64));  // pure function of the id
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 8u);  // 200 ids must touch all 8 shards
}

TEST(Router, RoundRobinCycles) {
  auto r = make_router("round-robin", 3);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(r->route(static_cast<ItemId>(1000 + i), 64), i % 3);
  }
}

TEST(Router, SizeClassGroupsBySizeNotId) {
  auto r = make_router("size-class", 4);
  const std::size_t a = r->route(1, 4096);
  EXPECT_EQ(r->route(999, 5000), a);  // same log2 class, any id
  EXPECT_NE(r->route(2, 8192), a);    // adjacent class, different shard
}

TEST(Router, UnknownPolicyErrorListsKnownNames) {
  try {
    (void)make_router("best-fit", 2);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("best-fit"), std::string::npos);
    for (const std::string& name : router_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
  EXPECT_THROW((void)make_router("hash", 0), InvariantViolation);
}

// -- S = 1 equivalence ------------------------------------------------------

class ShardedEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedEquivalence, SingleShardMatchesPlainEngineExactly) {
  const std::string allocator = GetParam();
  const Sequence seq = admissible_churn(allocator, 1, 600, 7);

  CellConfig cell;
  cell.allocator = allocator;
  cell.params.eps = kEps;
  cell.params.seed = 1;
  ValidatedCell plain(seq, cell);
  const RunStats plain_stats = plain.engine().run(seq.updates);
  plain.memory().audit();

  for (const char* router : {"hash", "size-class", "round-robin"}) {
    ShardedConfig config = shard_config(allocator, 1, router);
    config.shard_capacity = kWideShardCap;
    ShardedEngine sharded(config);
    const ShardedRunStats stats = sharded.run(seq);
    sharded.audit();

    // Exact equality: one shard serves the identical update stream with
    // the identical allocator seed, so every cost is bit-for-bit equal.
    EXPECT_EQ(stats.global.updates, plain_stats.updates);
    EXPECT_EQ(stats.global.moved_mass, plain_stats.moved_mass);
    EXPECT_EQ(stats.global.update_mass, plain_stats.update_mass);
    EXPECT_EQ(stats.global.mean_cost(), plain_stats.mean_cost());
    EXPECT_EQ(stats.global.max_cost(), plain_stats.max_cost());
    EXPECT_EQ(stats.fallback_routes, 0u);
    expect_same_layout(plain.memory(), sharded.memory(0));
  }
}

INSTANTIATE_TEST_SUITE_P(Allocators, ShardedEquivalence,
                         ::testing::Values("folklore-compact", "simple",
                                           "geo"));

// -- Validated S > 1 runs ---------------------------------------------------

TEST(ShardedEngine, ChurnAcrossShardsPassesValidationAndAudit) {
  for (const char* router : {"hash", "size-class", "round-robin"}) {
    const Sequence seq = shard_churn(4, 1'200, 3);
    ShardedConfig config = shard_config("simple", 4, router);
    config.audit_every = 64;  // belt-and-suspenders on top of incremental
    config.batch_size = 256;
    ShardedEngine engine(config);
    const ShardedRunStats stats = engine.run(seq);
    engine.audit();

    EXPECT_EQ(stats.global.updates, seq.updates.size());
    std::size_t per_shard_total = 0;
    for (const RunStats& s : stats.per_shard) per_shard_total += s.updates;
    EXPECT_EQ(per_shard_total, seq.updates.size());
    EXPECT_EQ(stats.shards, 4u);
    EXPECT_GT(stats.batches, 1u);
    EXPECT_GE(stats.imbalance(), 1.0);
  }
}

TEST(ShardedEngine, AdversarialSawtoothAcrossShards) {
  SawtoothConfig c;
  c.capacity = kShardCap * 4;
  c.eps = kEps;
  c.min_size = static_cast<Tick>(kEps * static_cast<double>(kShardCap));
  c.max_size = 2 * c.min_size - 1;
  c.teeth = 2;
  const Sequence seq = make_sawtooth(c);
  ShardedEngine engine(shard_config("folklore-compact", 4));
  engine.run(seq);
  engine.audit();
}

TEST(ShardedEngine, MultiTenantSkewAcrossShards) {
  MultiTenantConfig c;
  c.capacity = kShardCap * 4;
  c.eps = kEps;
  c.tenants = 6;
  c.zipf_s = 1.5;
  c.min_size = static_cast<Tick>(kEps * static_cast<double>(kShardCap));
  c.max_size = 2 * c.min_size - 1;
  c.churn_updates = 1'000;
  const Sequence seq = make_multi_tenant(c);
  ShardedEngine engine(shard_config("simple", 4, "size-class"));
  const ShardedRunStats stats = engine.run(seq);
  engine.audit();
  EXPECT_EQ(stats.global.updates, seq.updates.size());
}

// -- Fallback routing -------------------------------------------------------

TEST(ShardedEngine, OverloadedShardFallsBackToLeastLoaded) {
  // Every item lands in one log2 size class, so the size-class router
  // proposes the same shard for all of them; at 0.8 global load that is
  // ~1.6 shard budgets of mass, which must spill to the other shard.
  const Sequence seq = shard_churn(2, 400, 5, /*target_load=*/0.8);
  ShardedEngine engine(shard_config("simple", 2, "size-class"));
  const ShardedRunStats stats = engine.run(seq);
  engine.audit();
  EXPECT_GT(stats.fallback_routes, 0u);
  // Both shards ended up carrying live mass.
  EXPECT_GT(engine.memory(0).live_mass(), 0u);
  EXPECT_GT(engine.memory(1).live_mass(), 0u);
}

TEST(ShardedEngine, ItemFittingNoShardThrows) {
  // A single item larger than one shard's budget honours the *global*
  // promise but can never be placed.
  SequenceBuilder b("too-big", 2 * kShardCap, kEps);
  b.insert(kShardCap);  // > shard budget = kShardCap * (1 - eps)
  const Sequence seq = b.take();
  ShardedEngine engine(shard_config("folklore-compact", 2));
  EXPECT_THROW(engine.run(seq), InvariantViolation);
}

// -- Migration and rebalancing ----------------------------------------------

TEST(ShardedEngine, MigrateMovesItemAndChargesCost) {
  const Sequence seq = shard_churn(2, 200, 11);
  ShardedEngine engine(shard_config("simple", 2));
  const ShardedRunStats before = engine.run(seq);

  // Find any live item and push it to the other shard.
  const auto snapshot = engine.memory(0).item_count() > 0
                            ? engine.memory(0).snapshot()
                            : engine.memory(1).snapshot();
  ASSERT_FALSE(snapshot.empty());
  const ItemId id = snapshot.front().id;
  const Tick size = snapshot.front().size;
  const std::size_t from = engine.shard_of(id);
  const std::size_t to = 1 - from;

  engine.migrate(id, to);
  engine.audit();
  EXPECT_EQ(engine.shard_of(id), to);
  EXPECT_TRUE(engine.memory(to).contains(id));
  EXPECT_FALSE(engine.memory(from).contains(id));

  const ShardedRunStats after = engine.stats();
  EXPECT_EQ(after.migrations, before.migrations + 1);
  EXPECT_EQ(after.migrated_mass, before.migrated_mass + size);
  // The migration is charged like updates: one delete + one insert.
  EXPECT_EQ(after.global.updates, before.global.updates + 2);
  EXPECT_GE(after.global.moved_mass, before.global.moved_mass + size);

  // Migrating to the current shard is a no-op.
  engine.migrate(id, to);
  EXPECT_EQ(engine.stats().migrations, after.migrations);
}

TEST(ShardedEngine, RebalanceReducesLiveMassImbalance) {
  // size-class routing piles every item onto one shard of four.
  const Sequence seq = shard_churn(4, 400, 13, /*target_load=*/0.3);
  ShardedEngine engine(shard_config("simple", 4, "size-class"));
  engine.run(seq);

  auto max_over_mean = [&] {
    Tick total = 0;
    Tick max_mass = 0;
    for (std::size_t s = 0; s < engine.shard_count(); ++s) {
      total += engine.memory(s).live_mass();
      max_mass = std::max(max_mass, engine.memory(s).live_mass());
    }
    return static_cast<double>(max_mass) * 4.0 / static_cast<double>(total);
  };
  const double before = max_over_mean();
  ASSERT_GT(before, 2.0);  // heavily skewed by construction

  const std::size_t moves = engine.rebalance(1.25);
  engine.audit();
  EXPECT_GT(moves, 0u);
  EXPECT_LE(max_over_mean(), 1.25);
  EXPECT_EQ(engine.stats().migrations, moves);
}

TEST(ShardedEngine, RebalanceThresholdRunsBetweenBatches) {
  ShardedConfig config = shard_config("simple", 4, "size-class");
  config.batch_size = 128;
  config.rebalance_threshold = 1.5;
  const Sequence seq = shard_churn(4, 600, 17, /*target_load=*/0.3);
  ShardedEngine engine(config);
  const ShardedRunStats stats = engine.run(seq);
  engine.audit();
  EXPECT_GT(stats.migrations, 0u);
}

// -- Determinism ------------------------------------------------------------

TEST(ShardedEngine, ResultIndependentOfThreadCount) {
  const Sequence seq = shard_churn(4, 800, 19);
  ShardedConfig one = shard_config("simple", 4);
  one.threads = 1;
  ShardedConfig many = shard_config("simple", 4);
  many.threads = 4;

  ShardedEngine e1(one);
  ShardedEngine e4(many);
  const ShardedRunStats s1 = e1.run(seq);
  const ShardedRunStats s4 = e4.run(seq);

  EXPECT_EQ(s1.global.updates, s4.global.updates);
  EXPECT_EQ(s1.global.moved_mass, s4.global.moved_mass);
  EXPECT_EQ(s1.fallback_routes, s4.fallback_routes);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(s1.per_shard[s].moved_mass, s4.per_shard[s].moved_mass);
    expect_same_layout(e1.memory(s), e4.memory(s));
  }
}

// -- Multi-tenant generator --------------------------------------------------

TEST(MultiTenant, GeneratesWellFormedSequenceWithinBand) {
  MultiTenantConfig c;
  c.capacity = Tick{1} << 32;
  c.eps = kEps;
  c.tenants = 4;
  c.zipf_s = 1.0;
  c.churn_updates = 500;
  const Sequence seq = make_multi_tenant(c);
  seq.check_well_formed();
  EXPECT_EQ(seq.name, "multi-tenant");
  const auto cap_d = static_cast<double>(c.capacity);
  const auto lo = static_cast<Tick>(kEps * cap_d);
  const auto hi = static_cast<Tick>(2 * kEps * cap_d) - 1;
  for (const Update& u : seq.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LE(u.size, hi);
  }
}

TEST(MultiTenant, ZipfSkewsTowardLowTenants) {
  // With strong skew, sizes from the head tenant's (smallest-size) band
  // must dominate the insert stream.
  MultiTenantConfig c;
  c.capacity = Tick{1} << 32;
  c.eps = kEps;
  c.tenants = 4;
  c.zipf_s = 2.0;
  c.churn_updates = 2'000;
  const Sequence seq = make_multi_tenant(c);
  const auto cap_d = static_cast<double>(c.capacity);
  const auto lo = static_cast<Tick>(kEps * cap_d);
  const auto hi = static_cast<Tick>(2 * kEps * cap_d) - 1;
  // First band edge, mirroring the generator's log partition.
  const double ratio = (static_cast<double>(hi) + 1) / static_cast<double>(lo);
  const auto band0_hi = static_cast<Tick>(static_cast<double>(lo) *
                                          std::pow(ratio, 1.0 / 4.0));
  std::size_t head = 0;
  std::size_t inserts = 0;
  for (const Update& u : seq.updates) {
    if (!u.is_insert()) continue;
    ++inserts;
    if (u.size < band0_hi) ++head;
  }
  ASSERT_GT(inserts, 0u);
  // Uniform tenants would put ~25% in band 0; zipf_s = 2 puts ~70% there.
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(inserts), 0.5);
}

TEST(MultiTenant, RejectsMoreTenantsThanDistinctSizes) {
  MultiTenantConfig c;
  c.capacity = Tick{1} << 32;
  c.eps = kEps;
  c.min_size = 10;
  c.max_size = 12;  // 3 distinct sizes
  c.tenants = 4;
  EXPECT_THROW((void)make_multi_tenant(c), InvariantViolation);
}

}  // namespace
}  // namespace memreal
