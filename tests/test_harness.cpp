// Harness: grid execution, aggregation, exponent fits, table rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

SequenceFactory simple_factory(std::size_t updates) {
  return [updates](double eps, std::uint64_t seed) {
    return make_simple_regime(kCap, eps, updates, seed);
  };
}

TEST(Harness, RunsGridAndAggregates) {
  ExperimentConfig c;
  c.allocator = "folklore-compact";
  c.make_sequence = simple_factory(200);
  c.eps_values = {1.0 / 8, 1.0 / 16};
  c.seeds = 2;
  c.audit_every = 64;
  const auto rows = run_experiment(c);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].eps, 1.0 / 8);
  EXPECT_DOUBLE_EQ(rows[1].eps, 1.0 / 16);
  for (const auto& r : rows) {
    EXPECT_EQ(r.seeds, 2u);
    EXPECT_GT(r.updates, 0u);
    EXPECT_GT(r.mean_cost, 0.0);
    EXPECT_GE(r.max_cost, r.mean_cost);
  }
}

TEST(Harness, DeterministicAcrossRuns) {
  ExperimentConfig c;
  c.allocator = "simple";
  c.make_sequence = simple_factory(150);
  c.eps_values = {1.0 / 16};
  c.seeds = 2;
  c.threads = 1;
  const auto a = run_experiment(c);
  const auto b = run_experiment(c);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].mean_cost, b[0].mean_cost);
}

TEST(Harness, FitsExponent) {
  std::vector<EpsRow> rows;
  for (double inv : {8.0, 16.0, 32.0, 64.0}) {
    EpsRow r;
    r.eps = 1.0 / inv;
    r.mean_cost = 2.0 * std::pow(inv, 0.75);
    rows.push_back(r);
  }
  const auto fit = fit_cost_exponent(rows);
  EXPECT_NEAR(fit.exponent, 0.75, 1e-9);
}

TEST(Harness, FitsLogShape) {
  std::vector<EpsRow> rows;
  for (double inv : {8.0, 16.0, 32.0, 64.0}) {
    EpsRow r;
    r.eps = 1.0 / inv;
    r.mean_cost = 1.0 + 0.5 * std::log2(inv);
    rows.push_back(r);
  }
  const auto fit = fit_cost_log(rows);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
}

TEST(Harness, TableRendering) {
  std::vector<EpsRow> rows(1);
  rows[0].eps = 0.125;
  rows[0].mean_cost = 3.5;
  const Table t = rows_table("folklore-compact", rows);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_string().find("folklore-compact"), std::string::npos);
}

TEST(Harness, ComparisonProducesTables) {
  ComparisonConfig c;
  c.allocators = {"folklore-compact", "simple"};
  c.make_sequence = simple_factory(200);
  c.eps_values = {1.0 / 8, 1.0 / 16, 1.0 / 32};
  c.seeds = 1;
  c.audit_every = 128;
  const auto result = run_comparison(c);
  ASSERT_EQ(result.rows.size(), 2u);
  const Table cost = result.cost_table();
  EXPECT_EQ(cost.rows(), 3u);
  const Table expo = result.exponent_table();
  EXPECT_EQ(expo.rows(), 2u);
  const auto fits = result.exponents();
  ASSERT_EQ(fits.size(), 2u);
}

}  // namespace
}  // namespace memreal
