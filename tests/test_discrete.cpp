// DISCRETE (the conclusion's "structured sizes" extension): exact-size
// covering pools, zero waste, adaptive rebuild period.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/discrete.h"
#include "mem/memory.h"
#include "testing.h"
#include "util/fit.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

Sequence k_sizes(double eps, std::size_t k, std::size_t updates,
                 std::uint64_t seed, double zipf = 0.0) {
  DiscreteChurnConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.distinct_sizes = k;
  c.churn_updates = updates;
  c.seed = seed;
  c.zipf_s = zipf;
  return make_discrete_churn(c);
}

TEST(DiscreteWorkload, PaletteIsExactlyK) {
  const Sequence s = k_sizes(1.0 / 32, 5, 500, 1);
  s.check_well_formed();
  std::set<Tick> sizes;
  for (const Update& u : s.updates) sizes.insert(u.size);
  EXPECT_EQ(sizes.size(), 5u);
}

TEST(DiscreteWorkload, ZipfSkewsPopularity) {
  const Sequence s = k_sizes(1.0 / 32, 8, 4000, 2, /*zipf=*/1.2);
  std::map<Tick, std::size_t> hist;
  for (const Update& u : s.updates) {
    if (u.is_insert()) ++hist[u.size];
  }
  std::vector<std::size_t> counts;
  for (const auto& [sz, n] : hist) counts.push_back(n);
  std::sort(counts.begin(), counts.end());
  // The most popular size dominates the least popular by a wide margin.
  EXPECT_GT(counts.back(), 4 * counts.front());
}

TEST(Discrete, ZeroWasteAlways) {
  const Sequence seq = k_sizes(1.0 / 32, 6, 800, 3);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  DiscreteAllocator alloc(mem);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, alloc, opts);
  for (const Update& u : seq.updates) {
    engine.step(u);
    // Perfect contiguity: stronger than the resizable bound.
    EXPECT_EQ(mem.span_end(), mem.live_mass());
    EXPECT_EQ(mem.extent_mass(), mem.live_mass());
  }
}

TEST(Discrete, SwapIsExactFit) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 8);
  DiscreteConfig c;
  c.rebuild_period = 2;
  DiscreteAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  const Tick s = kCap / 16;
  for (ItemId i = 1; i <= 6; ++i) engine.step(Update::insert(i, s));
  // After the rebuild at update 7, some items are outside the covering set.
  engine.step(Update::insert(7, s));
  const auto before = mem.snapshot();
  engine.step(Update::erase(before.front().id, s));
  // Still perfectly packed.
  EXPECT_EQ(mem.span_end(), mem.live_mass());
  alloc.check_invariants();
}

TEST(Discrete, RejectsTooManyDistinctSizes) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 8);
  DiscreteConfig c;
  c.max_distinct_sizes = 3;
  DiscreteAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 1000));
  engine.step(Update::insert(2, 1001));
  engine.step(Update::insert(3, 1002));
  EXPECT_THROW(engine.step(Update::insert(4, 1003)), InvariantViolation);
}

TEST(Discrete, AdaptivePeriodTracksSqrtNOverK) {
  const Sequence seq = k_sizes(1.0 / 256, 4, 2000, 5);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 64;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  DiscreteAllocator alloc(mem);
  Engine engine(mem, alloc);
  engine.run(seq.updates);
  // n ~ 0.9 / (1.5 eps) ~ 154 live items, k = 4: sqrt(n/k) ~ 6.
  EXPECT_GE(alloc.current_period(), 3u);
  EXPECT_LE(alloc.current_period(), 16u);
  EXPECT_EQ(alloc.distinct_sizes(), 4u);
}

TEST(Discrete, BeatsSimpleOnFewSizes) {
  const double eps = 1.0 / 512;
  const Sequence seq = k_sizes(eps, 4, 6000, 7);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 512;
  auto run = [&](const char* name) {
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    AllocatorParams p;
    p.eps = eps;
    p.seed = 3;
    auto alloc = make_allocator(name, mem, p);
    Engine engine(mem, *alloc);
    return engine.run(seq.updates).mean_cost();
  };
  const double discrete = run("discrete");
  const double simple = run("simple");
  const double folklore = run("folklore-compact");
  EXPECT_LT(discrete, simple);
  EXPECT_LT(discrete, folklore);
}

TEST(Discrete, DrainLeavesMemoryEmpty) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 8);
  DiscreteAllocator alloc(mem);
  Engine engine(mem, alloc);
  const Tick s = kCap / 32;
  for (ItemId i = 1; i <= 8; ++i) {
    engine.step(Update::insert(i, s + (i % 2) * 7));
  }
  for (ItemId i = 1; i <= 8; ++i) {
    engine.step(Update::erase(i, s + (i % 2) * 7));
  }
  EXPECT_EQ(mem.item_count(), 0u);
  EXPECT_EQ(alloc.distinct_sizes(), 0u);
  alloc.check_invariants();
}

// Parameterized sweep: invariants across eps, k, zipf and seeds.
struct DiscreteParam {
  double eps;
  std::size_t k;
  double zipf;
  std::uint64_t seed;
};

class DiscreteSweep : public ::testing::TestWithParam<DiscreteParam> {};

TEST_P(DiscreteSweep, InvariantsHold) {
  const auto [eps, k, zipf, seed] = GetParam();
  const Sequence seq = k_sizes(eps, k, 600, seed, zipf);
  const RunStats s = testing::run_with_invariants("discrete", seq, seed);
  EXPECT_GT(s.updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiscreteSweep,
    ::testing::Values(DiscreteParam{1.0 / 16, 1, 0.0, 1},
                      DiscreteParam{1.0 / 16, 2, 0.0, 2},
                      DiscreteParam{1.0 / 64, 4, 0.0, 1},
                      DiscreteParam{1.0 / 64, 8, 1.0, 2},
                      DiscreteParam{1.0 / 256, 16, 0.8, 1},
                      DiscreteParam{1.0 / 256, 32, 1.5, 2}));

}  // namespace
}  // namespace memreal
