// RSUM (Theorem 6.1): blocks, valid-block search, subset-sum swaps, trash
// can and buffer, rebuilds, both delta regimes, decision-time tracking.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/rsum.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/random_item.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

Sequence delta_seq(double eps, double delta, std::size_t pairs,
                   std::uint64_t seed) {
  RandomItemConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.delta = delta;
  c.churn_pairs = pairs;
  c.seed = seed;
  return make_random_item_sequence(c);
}

TEST(RSum, BlockSizeMatchesPaper) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 256);
  RSumConfig c;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 64;
  RSumAllocator r(mem, c);
  // m = 2 * ceil(log2(256)/2) = 8.
  EXPECT_EQ(r.block_size(), 8u);
  // delta = 1/64 > eps/4 = 1/1024: the Lemma 6.8 regime.
  EXPECT_TRUE(r.big_delta_mode());
}

TEST(RSum, BigDeltaModeDetection) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 16);
  RSumConfig c;
  c.eps = 1.0 / 16;
  c.delta = 1.0 / 32;  // delta > eps/4 = 1/64
  RSumAllocator big(mem, c);
  EXPECT_TRUE(big.big_delta_mode());

  Memory mem2 = testing::strict_memory(kCap, 1.0 / 16);
  c.delta = 1.0 / 128;  // delta < eps/4
  RSumAllocator small(mem2, c);
  EXPECT_FALSE(small.big_delta_mode());
}

TEST(RSum, YWindowNeverWrapsBelowZero) {
  // Regression: y_target_lo_ = Tick(target - d_ticks) wrapped to ~2^64
  // when target < d_ticks, and the wrapped value then *passed* the
  // y_target_lo_ >= delta_hi_ sanity check.  The clamp happens in double
  // space before the cast.
  const auto [lo0, hi0] = RSumAllocator::make_y_window(10.0, 50);
  EXPECT_EQ(lo0, 0u);  // clamped, not wrapped
  EXPECT_EQ(hi0, 60u);
  const auto [lo1, hi1] = RSumAllocator::make_y_window(100.0, 30);
  EXPECT_EQ(lo1, 70u);
  EXPECT_EQ(hi1, 130u);
  // Exact boundary: target == d_ticks.
  EXPECT_EQ(RSumAllocator::make_y_window(50.0, 50).first, 0u);
}

TEST(RSum, YWindowSaneAcrossConfigGrid) {
  // Every admissible (eps, delta) must produce a non-wrapped window that
  // sits above the max item size — the constructor's sanity check, now
  // exercised across extremes.
  for (const double eps : {1.0 / 16, 1.0 / 256, 1.0 / 4096}) {
    for (const double mult : {0.25, 1.0, 4.0}) {
      const double delta = std::pow(eps, 0.75) * mult;
      if (delta <= 0 || delta >= 0.25) continue;
      Memory mem = testing::strict_memory(kCap, eps);
      RSumConfig c;
      c.eps = eps;
      c.delta = delta;
      RSumAllocator r(mem, c);
      const auto [lo, hi] = r.y_window();
      EXPECT_LT(lo, hi);
      EXPECT_LT(hi, kCap) << "wrapped window at eps " << eps << " delta "
                          << delta;
    }
  }
}

TEST(RSum, GapBoundMatchesPaper) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 256);
  RSumConfig c;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 64;
  RSumAllocator r(mem, c);
  const double expect = (1.0 / 256) * (1.0 / 64) * 8.0 *
                        static_cast<double>(kCap);
  EXPECT_NEAR(static_cast<double>(r.gap_bound()), expect, 2.0);
}

TEST(RSum, FillThenFirstDeleteTriggersRebuild) {
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 64;
  Memory mem = testing::strict_memory(kCap, eps);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  const auto lo = static_cast<Tick>(delta * static_cast<double>(kCap));
  Rng rng(3);
  const std::size_t n = random_item_count(delta);
  for (ItemId i = 1; i <= n; ++i) {
    engine.step(Update::insert(i, rng.next_in(lo, 2 * lo)));
  }
  EXPECT_EQ(r.rebuilds(), 0u);  // inserts never rebuild
  engine.step(Update::erase(1, mem.size_of(1)));
  EXPECT_EQ(r.rebuilds(), 1u);  // no valid blocks existed before
  EXPECT_GT(r.valid_blocks(), 0u);
  r.check_invariants();
}

TEST(RSum, InsertCostIsOne) {
  const double eps = 1.0 / 256;
  Memory mem = testing::strict_memory(kCap, eps);
  RSumConfig c;
  c.eps = eps;
  c.delta = 1.0 / 64;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  const auto lo = static_cast<Tick>(c.delta * static_cast<double>(kCap));
  EXPECT_DOUBLE_EQ(engine.step(Update::insert(1, lo)), 1.0);
  EXPECT_DOUBLE_EQ(engine.step(Update::insert(2, lo + 5)), 1.0);
}

TEST(RSum, RejectsOutOfRangeSizes) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 256);
  RSumConfig c;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 64;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  const auto lo = static_cast<Tick>(c.delta * static_cast<double>(kCap));
  EXPECT_THROW(engine.step(Update::insert(1, lo / 2)), InvariantViolation);
  EXPECT_THROW(engine.step(Update::insert(2, 3 * lo)), InvariantViolation);
}

TEST(RSum, SmallDeltaChurnFullInvariants) {
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 2048;  // delta < eps/4 = 1/1024
  const Sequence seq = delta_seq(eps, delta, 600, 7);
  const RunStats s =
      testing::run_with_invariants("rsum", seq, 7, delta, 1);
  EXPECT_GT(s.updates, 1000u);
}

TEST(RSum, BigDeltaChurnFullInvariants) {
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 128;  // delta > eps/4
  const Sequence seq = delta_seq(eps, delta, 400, 9);
  const RunStats s = testing::run_with_invariants("rsum", seq, 9, delta, 1);
  EXPECT_GT(s.updates, 700u);
}

TEST(RSum, DecisionTimeTracked) {
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 512;
  const Sequence seq = delta_seq(eps, delta, 300, 11);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 16;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  engine.run(seq.updates);
  EXPECT_GT(r.compat_checks(), 0u);
  EXPECT_GT(r.decision_seconds(), 0.0);
}

TEST(RSum, CompatChecksAreMostlySuccessful) {
  // The purity-of-valid-blocks property: each check succeeds with
  // probability Omega(1), so failures per delete stay O(1) — empirically
  // the failure/check ratio stays well below 1.
  const double eps = 1.0 / 1024;
  const double delta = 1.0 / 4096;
  const Sequence seq = delta_seq(eps, delta, 1500, 13);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 64;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  engine.run(seq.updates);
  ASSERT_GT(r.compat_checks(), 100u);
  const double fail_rate = static_cast<double>(r.compat_failures()) /
                           static_cast<double>(r.compat_checks());
  EXPECT_LT(fail_rate, 0.9);
}

TEST(RSum, RebuildsAreInfrequent) {
  // Expected phase length is Omega(delta^-1 / m): rebuilds per update must
  // be far below 1.
  const double eps = 1.0 / 1024;
  const double delta = 1.0 / 4096;
  const Sequence seq = delta_seq(eps, delta, 1500, 17);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 64;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  RSumAllocator r(mem, c);
  Engine engine(mem, r);
  engine.run(seq.updates);
  EXPECT_LT(r.rebuilds(), seq.updates.size() / 20);
}

TEST(RSum, StubBlockDeletesHandled) {
  // n not divisible by m leaves an invalid stub block at the left; deletes
  // inside it must spill into the neighbour or fall back to a rebuild, but
  // never corrupt the layout.
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 64;  // n = 16, m = 8: force a stub via churn
  Memory mem = testing::strict_memory(kCap, eps);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  c.block_items = 6;  // 16 items -> stub of 4
  RSumAllocator r(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, r, opts);
  Rng rng(5);
  const auto lo = static_cast<Tick>(delta * static_cast<double>(kCap));
  std::vector<std::pair<ItemId, Tick>> live;
  for (ItemId i = 1; i <= 16; ++i) {
    const Tick s = rng.next_in(lo, 2 * lo);
    live.emplace_back(i, s);
    engine.step(Update::insert(i, s));
  }
  ItemId next = 100;
  for (int round = 0; round < 200; ++round) {
    const auto k = static_cast<std::size_t>(rng.next_below(live.size()));
    engine.step(Update::erase(live[k].first, live[k].second));
    live[k] = live.back();
    live.pop_back();
    const Tick s = rng.next_in(lo, 2 * lo);
    engine.step(Update::insert(next, s));
    live.emplace_back(next, s);
    ++next;
  }
  r.check_invariants();
  mem.audit();
}

TEST(RSum, PingPongAtTrashBoundary) {
  const double eps = 1.0 / 1024;
  const double delta = 1.0 / 512;
  Memory mem = testing::strict_memory(kCap, eps);
  RSumConfig c;
  c.eps = eps;
  c.delta = delta;
  RSumAllocator r(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, r, opts);
  Rng rng(9);
  const auto lo = static_cast<Tick>(delta * static_cast<double>(kCap));
  for (ItemId i = 1; i <= 128; ++i) {
    engine.step(Update::insert(i, rng.next_in(lo, 2 * lo)));
  }
  // Repeatedly insert then immediately delete the freshest item — it sits
  // at the very end of the trash every time.
  ItemId next = 1000;
  for (int round = 0; round < 150; ++round) {
    const Tick s = rng.next_in(lo, 2 * lo);
    engine.step(Update::insert(next, s));
    engine.step(Update::erase(next, s));
    ++next;
  }
  r.check_invariants();
  mem.audit();
  EXPECT_EQ(mem.item_count(), 128u);
}

TEST(RSum, BlockSizeAblationOverride) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 256);
  RSumConfig c;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 64;
  c.block_items = 12;
  RSumAllocator r(mem, c);
  EXPECT_EQ(r.block_size(), 12u);
}

// Parameterized sweep across (eps, delta, seed) in both regimes.
struct RSumParam {
  double eps;
  double delta;
  std::uint64_t seed;
};

class RSumSweep : public ::testing::TestWithParam<RSumParam> {};

TEST_P(RSumSweep, InvariantsHold) {
  const auto [eps, delta, seed] = GetParam();
  const Sequence seq = delta_seq(eps, delta, 400, seed);
  const RunStats s =
      testing::run_with_invariants("rsum", seq, seed, delta, 2);
  EXPECT_GT(s.updates, 0u);
  // Cost sanity: far below folklore for these parameters.
  EXPECT_LT(s.mean_cost(), 0.5 / eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RSumSweep,
    ::testing::Values(RSumParam{1.0 / 64, 1.0 / 512, 1},
                      RSumParam{1.0 / 64, 1.0 / 512, 2},
                      RSumParam{1.0 / 256, 1.0 / 2048, 1},
                      RSumParam{1.0 / 256, 1.0 / 128, 2},   // big delta
                      RSumParam{1.0 / 256, 1.0 / 64, 3},    // big delta
                      RSumParam{1.0 / 1024, 1.0 / 8192, 1},
                      RSumParam{1.0 / 1024, 1.0 / 256, 2}   // big delta
                      ));

}  // namespace
}  // namespace memreal
