// Subset-sum engines: brute-force oracle, meet-in-the-middle equivalence
// (parameterized sweep), and the Theorem 6.2 success-probability property.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "subsetsum/subsetsum.h"
#include "util/rng.h"

namespace memreal {
namespace {

TEST(BruteForce, FindsKnownSubset) {
  std::vector<Tick> v{3, 5, 8, 13};
  auto r = subset_in_range_brute(v, 16, 16);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->sum, 16u);  // 3 + 13 or 3+5+8
}

TEST(BruteForce, RespectsCardinality) {
  std::vector<Tick> v{3, 5, 8, 13};
  auto r = subset_in_range_brute(v, 16, 16, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->indices.size(), 2u);
  EXPECT_EQ(r->sum, 16u);
  // 26 = 5 + 8 + 13 has no 2-element witness (pair sums: 8, 11, 13, 16,
  // 18, 21).
  EXPECT_FALSE(subset_in_range_brute(v, 26, 26, 2).has_value());
  EXPECT_TRUE(subset_in_range_brute(v, 26, 26, 3).has_value());
}

TEST(BruteForce, EmptyRangeImpossible) {
  std::vector<Tick> v{10, 20};
  EXPECT_FALSE(subset_in_range_brute(v, 1, 9).has_value());
  EXPECT_FALSE(subset_in_range_brute(v, 31, 100).has_value());
}

TEST(BruteForce, NeverReturnsEmptySubset) {
  std::vector<Tick> v{10, 20};
  EXPECT_FALSE(subset_in_range_brute(v, 0, 5).has_value());
}

TEST(Mitm, FindsKnownSubset) {
  std::vector<Tick> v{3, 5, 8, 13};
  auto r = subset_in_range_mitm(v, 16, 16);
  ASSERT_TRUE(r.has_value());
  Tick sum = 0;
  for (std::size_t i : r->indices) sum += v[i];
  EXPECT_EQ(sum, 16u);
  EXPECT_EQ(sum, r->sum);
}

TEST(Mitm, SingleElement) {
  std::vector<Tick> v{7};
  EXPECT_TRUE(subset_in_range_mitm(v, 7, 7).has_value());
  EXPECT_FALSE(subset_in_range_mitm(v, 6, 6).has_value());
  EXPECT_FALSE(subset_in_range_mitm(v, 8, 9).has_value());
}

TEST(Mitm, EmptyInput) {
  std::vector<Tick> v;
  EXPECT_FALSE(subset_in_range_mitm(v, 0, 10).has_value());
}

TEST(Mitm, NeverReturnsEmptySubset) {
  std::vector<Tick> v{10, 20, 30, 40};
  EXPECT_FALSE(subset_in_range_mitm(v, 0, 5).has_value());
}

TEST(Mitm, CardinalityWitnessValid) {
  std::vector<Tick> v{1, 2, 4, 8, 16, 32};
  for (std::size_t k = 1; k <= v.size(); ++k) {
    auto r = subset_in_range_mitm(v, 1, 63, k);
    ASSERT_TRUE(r.has_value()) << "k=" << k;
    EXPECT_EQ(r->indices.size(), k);
  }
}

// Parameterized agreement sweep: MITM must agree with brute force on the
// decision problem for random instances across sizes and window widths.
struct AgreeParam {
  std::size_t m;
  Tick window;
  bool cardinality;
};

class SubsetAgree : public ::testing::TestWithParam<AgreeParam> {};

TEST_P(SubsetAgree, MitmMatchesBruteForce) {
  const auto [m, window, use_card] = GetParam();
  Rng rng(1234 + m * 31 + window);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Tick> v(m);
    Tick total = 0;
    for (auto& x : v) {
      x = rng.next_in(50, 150);
      total += x;
    }
    const Tick target = rng.next_in(1, total + 20);
    const Tick lo = target > window ? target - window : 0;
    std::optional<std::size_t> card;
    if (use_card) card = m / 2;
    const auto b = subset_in_range_brute(v, lo, target, card);
    const auto g = subset_in_range_mitm(v, lo, target, card);
    ASSERT_EQ(b.has_value(), g.has_value())
        << "m=" << m << " target=" << target << " window=" << window;
    if (g) {
      Tick sum = 0;
      for (std::size_t i : g->indices) sum += v[i];
      EXPECT_EQ(sum, g->sum);
      EXPECT_GE(sum, lo);
      EXPECT_LE(sum, target);
      if (card) {
        EXPECT_EQ(g->indices.size(), *card);
      }
      // Indices unique.
      std::vector<std::size_t> idx = g->indices;
      std::sort(idx.begin(), idx.end());
      EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubsetAgree,
    ::testing::Values(AgreeParam{1, 0, false}, AgreeParam{2, 5, false},
                      AgreeParam{4, 0, false}, AgreeParam{6, 3, false},
                      AgreeParam{8, 10, false}, AgreeParam{10, 0, false},
                      AgreeParam{12, 25, false}, AgreeParam{14, 2, false},
                      AgreeParam{6, 5, true}, AgreeParam{8, 0, true},
                      AgreeParam{10, 10, true}, AgreeParam{12, 4, true}));

// Theorem 6.2: for m = 2*ceil(log(n)/2) uniform values in [1, 2] (scaled to
// ticks) and y in (3/4)m ± 1, an (m/2)-element subset lands in
// [y - log(n)/n, y] with probability Omega(1).
TEST(Theorem62, ConstantSuccessProbability) {
  const double n = 256.0;
  const std::size_t m = 2 * static_cast<std::size_t>(
                                std::ceil(std::log2(n) / 2.0));  // = 8
  const double scale = 1e9;
  const auto window = static_cast<Tick>(std::log2(n) / n * scale);
  Rng rng(777);
  int hits = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<Tick> v(m);
    for (auto& x : v) {
      x = static_cast<Tick>((1.0 + rng.next_double()) * scale);
    }
    const double y_d = 0.75 * static_cast<double>(m) * scale +
                       (rng.next_double() * 2.0 - 1.0) * scale;
    const auto y = static_cast<Tick>(y_d);
    hits += subset_in_range_mitm(v, y - window, y, m / 2).has_value();
  }
  // Omega(1): empirically well above a small constant.
  EXPECT_GT(hits, trials / 10);
}

// The success probability must not collapse as m grows (the content of
// Theorem 6.2's  Omega(1) bound).
TEST(Theorem62, SuccessDoesNotCollapseWithM) {
  const double scale = 1e9;
  for (std::size_t m : {8u, 12u, 16u, 20u}) {
    const double n = std::pow(2.0, static_cast<double>(m) / 1.0);
    const auto window =
        static_cast<Tick>(std::log2(n) / n * scale * static_cast<double>(m) /
                          std::log2(n));  // ~ m / n * scale
    Rng rng(m);
    int hits = 0;
    const int trials = 150;
    for (int t = 0; t < trials; ++t) {
      std::vector<Tick> v(m);
      for (auto& x : v) {
        x = static_cast<Tick>((1.0 + rng.next_double()) * scale);
      }
      const auto y = static_cast<Tick>(0.75 * static_cast<double>(m) * scale);
      hits += subset_in_range_mitm(v, y > window ? y - window : 0, y, m / 2)
                  .has_value();
    }
    EXPECT_GT(hits, trials / 20) << "m=" << m;
  }
}

TEST(HasSubset, DecisionWrapper) {
  std::vector<Tick> v{2, 4, 6};
  EXPECT_TRUE(has_subset_in_range(v, 6, 6));
  EXPECT_FALSE(has_subset_in_range(v, 13, 100));
}

}  // namespace
}  // namespace memreal
