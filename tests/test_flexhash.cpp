// FLEXHASH (Lemma 4.9): buffer accounts, unit rotation, external updates
// at O(1) expected cost, internal updates delegated to TINYSLAB.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/flexhash.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;
constexpr double kEps = 1.0 / 16;

FlexHashConfig flex_config(Tick region_start = 0) {
  FlexHashConfig c;
  c.eps = kEps;
  c.region_start = region_start;
  c.seed = 11;
  return c;
}

Tick tiny_size(const FlexHashAllocator& f) {
  return f.tiny().max_item_size() / 2;
}

TEST(FlexHash, TypeCountLogarithmic) {
  Memory mem = testing::strict_memory(kCap, kEps);
  FlexHashAllocator f(mem, flex_config());
  // Types cover (eps^4, 1] geometrically: about 4 log2(1/eps) of them.
  EXPECT_GE(f.type_count(), 14u);
  EXPECT_LE(f.type_count(), 18u);
}

TEST(FlexHash, InternalUpdatesWork) {
  Memory mem = testing::strict_memory(kCap, kEps);
  FlexHashAllocator f(mem, flex_config());
  Engine engine(mem, f);
  const Tick s = tiny_size(f);
  engine.step(Update::insert(1, s));
  engine.step(Update::insert(2, s));
  engine.step(Update::erase(1, s));
  EXPECT_EQ(mem.item_count(), 1u);
  f.check_invariants();
}

TEST(FlexHash, ItemsPlacedAfterRegionStart) {
  Memory mem = testing::strict_memory(kCap, kEps);
  // Region starts at eps/2 (as in the combined allocator); items must land
  // at or beyond it.
  const Tick start = mem.eps_ticks() / 2;
  ValidationPolicy policy;
  // Only the resizable span bound is inapplicable standalone; keep the
  // incremental overlap checks armed.
  policy.check_resizable_bound = false;
  Memory mem2(kCap, mem.eps_ticks(), policy);
  FlexHashAllocator f(mem2, flex_config(start));
  Engine engine(mem2, f);
  engine.step(Update::insert(1, tiny_size(f)));
  EXPECT_GE(mem2.offset_of(1), start);
  f.check_invariants();
}

TEST(FlexHash, ExternalPushRightMovesRegion) {
  Memory mem = testing::strict_memory(kCap, kEps);
  ValidationPolicy policy;
  policy.check_resizable_bound = false;
  Memory mem2(kCap, mem.eps_ticks(), policy);
  FlexHashAllocator f(mem2, flex_config(0));
  Engine engine(mem2, f);
  engine.step(Update::insert(1, tiny_size(f)));
  const Tick before = f.region_start();
  const Tick push = static_cast<Tick>(1e-3 * static_cast<double>(kCap));
  mem2.begin_update(push, true);
  f.external_update(push, /*push_right=*/true);
  mem2.end_update();
  EXPECT_EQ(f.region_start(), before + push);
  f.check_invariants();
  // Item must still be at or beyond the (new) region start.
  EXPECT_GE(mem2.offset_of(1), f.region_start());
}

TEST(FlexHash, ManySmallExternalUpdatesKeepInvariants) {
  ValidationPolicy policy;
  policy.check_resizable_bound = false;
  Memory mem(kCap, static_cast<Tick>(kEps * static_cast<double>(kCap)),
             policy);
  FlexHashConfig c = flex_config(kCap / 4);
  // Shrink the tiny bound so the "small external update" regime
  // (max_tiny, M/100) is non-empty even at this large eps.
  c.max_tiny_size =
      static_cast<Tick>(std::pow(kEps, 5.0) * static_cast<double>(kCap));
  FlexHashAllocator f(mem, c);
  Engine engine(mem, f);
  // Populate some units.
  const Tick s = tiny_size(f);
  ItemId next = 1;
  for (int i = 0; i < 300; ++i) engine.step(Update::insert(next++, s));
  // Shower of small external updates, biased rightward so the buffer
  // accounts drain and rotations must fire.
  Rng rng(5);
  const Tick x_lo = f.tiny().max_item_size() + 1;
  const Tick x_hi = f.unit_size() / 100;
  ASSERT_LT(x_lo, x_hi);
  for (int i = 0; i < 3000; ++i) {
    const Tick x = rng.next_in(x_lo, x_hi);
    const bool right = rng.next_below(10) < 9;  // 90% right pushes
    mem.begin_update(x, true);
    f.external_update(x, right || f.region_start() < x);
    mem.end_update();
    f.check_invariants();
  }
  EXPECT_GT(f.rotations(), 0u);
  // All items still in place, no overlap.
  mem.audit();
}

TEST(FlexHash, BigExternalUpdatesRestoreImmediately) {
  ValidationPolicy policy;
  policy.check_resizable_bound = false;
  Memory mem(kCap, static_cast<Tick>(kEps * static_cast<double>(kCap)),
             policy);
  FlexHashAllocator f(mem, flex_config(kCap / 4));
  Engine engine(mem, f);
  const Tick s = tiny_size(f);
  ItemId next = 1;
  for (int i = 0; i < 200; ++i) engine.step(Update::insert(next++, s));
  // One huge push right: many multiples of M.
  const Tick x = 40 * f.unit_size();
  mem.begin_update(x, true);
  f.external_update(x, true);
  mem.end_update();
  f.check_invariants();
  mem.audit();
  mem.begin_update(x, true);
  f.external_update(x, false);
  mem.end_update();
  f.check_invariants();
  mem.audit();
}

TEST(FlexHash, GiantExternalUpdateUsesBulkShift) {
  // An external update far larger than the whole unit array must be
  // absorbed by shifting every unit once (cost O(region)), not by cycling
  // rotations; with zero units it is purely notional bookkeeping.
  ValidationPolicy policy;
  policy.check_resizable_bound = false;
  Memory mem(kCap, static_cast<Tick>(kEps * static_cast<double>(kCap)),
             policy);
  FlexHashAllocator f(mem, flex_config(kCap / 4));
  // Zero units: giant pushes in both directions, instant and consistent.
  const Tick giant = kCap / 16;
  for (int i = 0; i < 4; ++i) {
    mem.begin_update(giant, true);
    f.external_update(giant, /*push_right=*/true);
    mem.end_update();
    f.check_invariants();
  }
  for (int i = 0; i < 4; ++i) {
    mem.begin_update(giant, true);
    f.external_update(giant, /*push_right=*/false);
    mem.end_update();
    f.check_invariants();
  }
  // Now with live units: the shift must physically move each unit once.
  Engine engine(mem, f);
  const Tick s = tiny_size(f);
  for (ItemId i = 1; i <= 100; ++i) engine.step(Update::insert(i, s));
  const std::size_t units = f.unit_count();
  ASSERT_GT(units, 0u);
  const Tick moved_before = mem.total_moved();
  mem.begin_update(giant, true);
  f.external_update(giant, /*push_right=*/true);
  mem.end_update();
  f.check_invariants();
  mem.audit();
  // Every item moved at most a few times — not once per deficit unit.
  EXPECT_LE(mem.total_moved() - moved_before, 3 * mem.live_mass());
}

TEST(FlexHash, UnitDestructionSwapsFinalUnit) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(kCap, static_cast<Tick>(kEps * static_cast<double>(kCap)),
             policy);
  FlexHashAllocator f(mem, flex_config(0));
  Engine engine(mem, f);
  const Tick s = tiny_size(f);
  ItemId next = 1;
  for (int i = 0; i < 600; ++i) engine.step(Update::insert(next++, s));
  const std::size_t units_before = f.unit_count();
  ASSERT_GT(units_before, 1u);
  for (ItemId i = 1; i < next - 4; ++i) engine.step(Update::erase(i, s));
  EXPECT_LT(f.unit_count(), units_before);
  f.check_invariants();
  mem.audit();
}

TEST(FlexHash, SurvivesMixedChurnWithRotations) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 4;
  Memory mem(kCap, static_cast<Tick>(kEps * static_cast<double>(kCap)),
             policy);
  FlexHashAllocator f(mem, flex_config(kCap / 8));
  Engine engine(mem, f);
  Rng rng(17);
  const Tick s_lo = f.tiny().max_item_size() / 8;
  const Tick s_hi = f.tiny().max_item_size();
  std::vector<std::pair<ItemId, Tick>> live;
  ItemId next = 1;
  for (int i = 0; i < 3000; ++i) {
    const bool ins = live.empty() || rng.next_below(2) == 0;
    if (ins) {
      const Tick s = rng.next_in(s_lo, s_hi);
      engine.step(Update::insert(next, s));
      live.emplace_back(next, s);
      ++next;
    } else {
      const auto k = static_cast<std::size_t>(rng.next_below(live.size()));
      engine.step(Update::erase(live[k].first, live[k].second));
      live[k] = live.back();
      live.pop_back();
    }
    if (i % 10 == 0) {
      const Tick x = rng.next_in(f.tiny().max_item_size() + 1,
                                 4 * f.unit_size());
      const bool can_left = f.region_start() >= x;
      const bool right = !can_left || rng.next_below(2) == 0;
      mem.begin_update(x, true);
      f.external_update(x, right);
      mem.end_update();
    }
    if (i % 50 == 0) f.check_invariants();
  }
  f.check_invariants();
  mem.audit();
}

}  // namespace
}  // namespace memreal
