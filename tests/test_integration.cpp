// Cross-allocator integration property suite: every allocator runs its
// admissible workloads under exhaustive memory validation and allocator
// invariant checks, across seeds; plus cross-allocator ordering checks
// (the paper's headline: folklore > SIMPLE > GEO at small eps).
#include <gtest/gtest.h>

#include <cmath>

#include "mem/memory.h"
#include "testing.h"
#include "util/fit.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

struct IntegrationCase {
  const char* allocator;
  const char* workload;
  double eps;
  double delta;  // rsum only
  std::uint64_t seed;
};

Sequence build(const IntegrationCase& c) {
  const std::string w = c.workload;
  if (w == "simple-regime") {
    return make_simple_regime(kCap, c.eps, 600, c.seed);
  }
  if (w == "geo-regime") {
    GeoRegimeConfig g;
    g.capacity = kCap;
    g.eps = c.eps;
    g.churn_updates = 600;
    g.seed = c.seed;
    g.huge_fraction = 0.05;
    return make_geo_regime(g);
  }
  if (w == "mixed") {
    MixedTinyLargeConfig m;
    m.capacity = kCap;
    m.eps = c.eps;
    m.churn_updates = 600;
    m.seed = c.seed;
    return make_mixed_tiny_large(m);
  }
  if (w == "random-item") {
    RandomItemConfig r;
    r.capacity = kCap;
    r.eps = c.eps;
    r.delta = c.delta;
    r.churn_pairs = 300;
    r.seed = c.seed;
    return make_random_item_sequence(r);
  }
  if (w == "sawtooth") {
    SawtoothConfig s;
    s.capacity = kCap;
    s.eps = c.eps;
    s.teeth = 2;
    s.seed = c.seed;
    return make_sawtooth(s);
  }
  ADD_FAILURE() << "unknown workload " << w;
  return Sequence{};
}

class IntegrationSweep : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(IntegrationSweep, FullValidationRun) {
  const IntegrationCase c = GetParam();
  const Sequence seq = build(c);
  const RunStats s =
      testing::run_with_invariants(c.allocator, seq, c.seed, c.delta, 8);
  EXPECT_GT(s.updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationSweep,
    ::testing::Values(
        IntegrationCase{"folklore-compact", "simple-regime", 1.0 / 32, 0, 1},
        IntegrationCase{"folklore-compact", "geo-regime", 1.0 / 32, 0, 2},
        IntegrationCase{"folklore-compact", "sawtooth", 1.0 / 32, 0, 3},
        IntegrationCase{"folklore-compact", "mixed", 1.0 / 16, 0, 4},
        IntegrationCase{"folklore-windowed", "simple-regime", 1.0 / 32, 0, 5},
        IntegrationCase{"folklore-windowed", "sawtooth", 1.0 / 32, 0, 6},
        IntegrationCase{"simple", "simple-regime", 1.0 / 32, 0, 7},
        IntegrationCase{"simple", "simple-regime", 1.0 / 128, 0, 8},
        IntegrationCase{"simple", "sawtooth", 1.0 / 64, 0, 9},
        IntegrationCase{"geo", "geo-regime", 1.0 / 64, 0, 10},
        IntegrationCase{"geo", "simple-regime", 1.0 / 64, 0, 11},
        IntegrationCase{"combined", "mixed", 1.0 / 16, 0, 12},
        IntegrationCase{"combined", "geo-regime", 1.0 / 32, 0, 13},
        IntegrationCase{"rsum", "random-item", 1.0 / 256, 1.0 / 2048, 14},
        IntegrationCase{"rsum", "random-item", 1.0 / 256, 1.0 / 128, 15}));

// Sawtooth with simple: sizes are in [eps, 2eps) so SIMPLE accepts it.
TEST(Integration, SimpleOnSawtoothResizable) {
  SawtoothConfig s;
  s.capacity = kCap;
  s.eps = 1.0 / 64;
  s.teeth = 3;
  const Sequence seq = make_sawtooth(s);
  const RunStats st = testing::run_with_invariants("simple", seq, 1, 0, 4);
  EXPECT_GT(st.updates, 0u);
}

// The paper's headline ordering at moderate eps: SIMPLE beats folklore and
// GEO beats SIMPLE on the [eps, 2eps) regime (amortized, same workload).
TEST(Integration, CostOrderingAtSmallEps) {
  const double eps = 1.0 / 512;
  const Sequence seq = make_simple_regime(kCap, eps, 3000, 42);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 256;

  auto run = [&](const char* name) {
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    AllocatorParams p;
    p.eps = eps;
    p.seed = 99;
    auto alloc = make_allocator(name, mem, p);
    Engine engine(mem, *alloc);
    return engine.run(seq.updates).mean_cost();
  };

  const double folklore = run("folklore-compact");
  const double simple = run("simple");
  EXPECT_LT(simple, folklore);
}

// The paper's shape claim for GEO: cost grows clearly sub-linearly in
// 1/eps (folklore's worst case is linear).  Absolute crossover against
// first-fit on friendly workloads needs smaller eps than 64-bit tick
// resolution allows — see EXPERIMENTS.md.
TEST(Integration, GeoCostGrowsSubLinearly) {
  std::vector<double> inv_eps, costs;
  for (double eps : {1.0 / 16, 1.0 / 64, 1.0 / 256}) {
    GeoRegimeConfig g;
    g.capacity = kCap;
    g.eps = eps;
    g.churn_updates = 1500;
    g.band_ratio = 16;
    g.seed = 5;
    const Sequence seq = make_geo_regime(g);
    ValidationPolicy policy;
    policy.audit_every_n_updates = 512;
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    AllocatorParams p;
    p.eps = eps;
    p.seed = 77;
    auto alloc = make_allocator("geo", mem, p);
    Engine engine(mem, *alloc);
    inv_eps.push_back(1.0 / eps);
    costs.push_back(engine.run(seq.updates).mean_cost());
  }
  const PowerLawFit fit = fit_power_law(inv_eps, costs);
  EXPECT_LT(fit.exponent, 0.85);
  EXPECT_GT(fit.exponent, 0.2);
}

// Every allocator leaves memory empty after a full drain.
class DrainSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DrainSweep, InsertAllDeleteAll) {
  const std::string name = GetParam();
  const double eps = 1.0 / 32;
  SequenceBuilder b("drain", kCap, eps);
  Rng rng(3);
  const auto lo = static_cast<Tick>(eps * static_cast<double>(kCap));
  std::vector<ItemId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(b.insert(rng.next_in(lo, 2 * lo - 1)));
  }
  for (ItemId id : ids) b.erase_id(id);
  const Sequence seq = b.take();
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  AllocatorParams p;
  p.eps = eps;
  p.delta = eps;  // rsum: sizes in [eps, 2eps)
  p.seed = 1;
  auto alloc = make_allocator(name, mem, p);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, *alloc, opts);
  engine.run(seq.updates);
  EXPECT_EQ(mem.item_count(), 0u);
  EXPECT_EQ(mem.live_mass(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, DrainSweep,
                         ::testing::Values("folklore-compact",
                                           "folklore-windowed", "simple",
                                           "geo", "combined", "rsum"));

}  // namespace
}  // namespace memreal
