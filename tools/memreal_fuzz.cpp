// memreal_fuzz — differential fuzzing driver over the allocator registry.
// Run with --help for usage.  Exit status: 0 = clean, 1 = failures
// found, 2 = usage error.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "util/check.h"
#include "util/table.h"

namespace {

using namespace memreal;

constexpr const char* kUsage = R"(memreal_fuzz [options]
  --seed N           campaign seed (default 1)
  --iters N          iterations (default 100)
  --start-iter N     first iteration index (default 0); reproduce a
                     failure with --seed S --start-iter I --iters 1
  --updates N        updates per generated sequence (default 200)
  --mutants N        mutants chained off each base sequence (default 2)
  --allocators a,b   comma-separated registry names (default: all)
  --scenario NAME    generate base sequences from the named scenario-zoo
                     workload (memreal_adv --list-scenarios) instead of
                     the free-form generator; errors up front, listing
                     each target's compatible scenarios, if any resolved
                     target cannot serve it
  --engine E         "validated" (default), "release", or "arena".
                     release also runs every target on the unchecked
                     release engine in lockstep and reports any
                     cost/counter/layout difference as
                     engine-divergence; arena locksteps each target
                     against a byte-backed arena cell, checking payload
                     integrity and the byte/tick rounding bound on top
                     (pair with a small --capacity-log2 — every tick is
                     a real byte payload)
  --threads N        worker threads (default: all cores)
  --capacity-log2 N  memory capacity 2^N ticks (default 40)
  --budget-slack X   multiplier on the registry cost budgets (default 1)
  --no-shrink        keep failing sequences unminimized
  --corpus DIR       persist shrunk reproducers under DIR
                     (default fuzz/corpus; "" disables persistence)
  --replay DIR       replay a reproducer corpus instead of fuzzing
  --list             print the fuzz target groups and exit

Determinism: the failure set and every reproducer trace are a pure
function of (--seed, --start-iter, --iters, workload shape flags) —
thread count only changes the wall clock.
)";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "memreal_fuzz: %s (run with --help for usage)\n",
               what.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  // strtoull would silently wrap negatives ("-1" -> 2^64-1); reject them.
  if (value[0] == '-' || value[0] == '+') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

void print_target_groups(const FuzzConfig& cfg) {
  const auto groups = make_target_groups(resolve_fuzz_targets(cfg));
  Table t({"group", "eps", "min size", "max size", "palette", "members"});
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const TargetGroup& group = groups[g];
    std::string members;
    for (const AllocatorInfo& m : group.members) {
      if (!members.empty()) members += ",";
      members += m.name;
    }
    t.add_row({std::to_string(g), Table::num(group.eps, 4),
               std::to_string(group.sizes.min_size(group.eps, cfg.capacity)),
               std::to_string(group.sizes.max_size(group.eps, cfg.capacity)),
               group.sizes.fixed_palette ? "yes" : "no", members});
  }
  t.print(std::cout);
}

/// The full replay line for one failing iteration — including every
/// workload-shape flag the campaign ran with, since the generated
/// sequence depends on all of them, not just the seed.
std::string reproduce_command(const FuzzConfig& cfg, std::uint64_t iteration) {
  std::ostringstream os;
  os << "memreal_fuzz --seed " << cfg.seed << " --start-iter " << iteration
     << " --iters 1 --updates " << cfg.updates_per_sequence << " --mutants "
     << cfg.mutants_per_sequence << " --capacity-log2 "
     << std::countr_zero(cfg.capacity);
  if (cfg.engine != "validated") os << " --engine " << cfg.engine;
  if (!cfg.scenario.empty()) os << " --scenario " << cfg.scenario;
  if (cfg.budget_slack != 1.0) os << " --budget-slack " << cfg.budget_slack;
  if (!cfg.allocators.empty()) {
    os << " --allocators ";
    for (std::size_t i = 0; i < cfg.allocators.size(); ++i) {
      os << (i ? "," : "") << cfg.allocators[i];
    }
  }
  return os.str();
}

void print_failures(const FuzzSummary& summary, const FuzzConfig& cfg) {
  for (const FuzzFailure& f : summary.failures) {
    std::printf(
        "FAILURE allocator=%s kind=%s iteration=%llu update=%zu\n"
        "  seed=%llu sequence-seed=%llu repro-updates=%zu (from %zu)\n"
        "  %s\n",
        f.report.allocator.c_str(), to_string(f.report.kind),
        static_cast<unsigned long long>(f.iteration),
        f.report.update_index,
        static_cast<unsigned long long>(cfg.seed),
        static_cast<unsigned long long>(f.sequence_seed),
        f.reproducer.size(), f.original_updates, f.report.message.c_str());
    if (!f.corpus_path.empty()) {
      std::printf("  corpus: %s\n", f.corpus_path.c_str());
    }
    std::printf("  reproduce: %s\n",
                reproduce_command(cfg, f.iteration).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FuzzConfig cfg;
  cfg.corpus_dir = "fuzz/corpus";
  bool list_only = false;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (flag == "--seed") {
      cfg.seed = parse_u64(flag, value());
    } else if (flag == "--iters") {
      cfg.iterations = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--start-iter") {
      cfg.start_iteration = parse_u64(flag, value());
    } else if (flag == "--updates") {
      cfg.updates_per_sequence =
          static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--mutants") {
      cfg.mutants_per_sequence =
          static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--allocators") {
      cfg.allocators = split_csv(value());
    } else if (flag == "--scenario") {
      cfg.scenario = value();
    } else if (flag == "--engine") {
      cfg.engine = value();
      if (cfg.engine != "validated" && cfg.engine != "release" &&
          cfg.engine != "arena") {
        usage_error("--engine must be 'validated', 'release', or 'arena'");
      }
    } else if (flag == "--threads") {
      cfg.threads = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--capacity-log2") {
      const std::uint64_t log2 = parse_u64(flag, value());
      if (log2 < 10 || log2 > 62) usage_error("--capacity-log2 out of range");
      cfg.capacity = Tick{1} << log2;
    } else if (flag == "--budget-slack") {
      cfg.budget_slack = parse_double(flag, value());
    } else if (flag == "--no-shrink") {
      cfg.shrink = false;
    } else if (flag == "--corpus") {
      cfg.corpus_dir = value();
    } else if (flag == "--replay") {
      replay_dir = value();
    } else if (flag == "--list") {
      list_only = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  try {
    if (list_only) {
      print_target_groups(cfg);
      return 0;
    }
    if (!replay_dir.empty()) {
      const FuzzSummary summary = replay_corpus(cfg, replay_dir);
      std::printf("memreal_fuzz replay: %zu reproducers, %zu updates, "
                  "%zu failures\n",
                  summary.iterations, summary.updates,
                  summary.failures.size());
      print_failures(summary, cfg);
      return summary.ok() ? 0 : 1;
    }
    std::printf("memreal_fuzz: seed=%llu iters=%zu start=%llu updates=%zu "
                "mutants=%zu engine=%s threads=%zu\n",
                static_cast<unsigned long long>(cfg.seed), cfg.iterations,
                static_cast<unsigned long long>(cfg.start_iteration),
                cfg.updates_per_sequence, cfg.mutants_per_sequence,
                cfg.engine.c_str(), cfg.threads);
    const FuzzSummary summary = run_fuzz(cfg);
    std::printf("memreal_fuzz: ran %zu sequences (%zu updates) over %zu "
                "iterations — %zu failures\n",
                summary.sequences, summary.updates, summary.iterations,
                summary.failures.size());
    print_failures(summary, cfg);
    return summary.ok() ? 0 : 1;
  } catch (const InvariantViolation& e) {
    std::fprintf(stderr, "memreal_fuzz: %s\n", e.what());
    return 2;
  }
}
