// memreal_report — aggregates the BENCH_*.json artifacts the bench
// binaries emit into the reproduction report.
//
//   memreal_report [options]
//     --bench-dir DIR     directory holding BENCH_*.json (default .)
//     --report FILE       generated report path (default docs/REPORT.md)
//     --experiments FILE  doc whose marker blocks are rewritten in place
//                         (default EXPERIMENTS.md)
//     --no-report         skip writing the report file
//     --no-experiments    skip the EXPERIMENTS.md rewrite
//     --check             claim-shape regression gate: exit 1 unless every
//                         claim verdict is PASS (missing bench files fail)
//     --shard-floor FILE  throughput floor: a BENCH_shard.json from an
//                         earlier run; every matching updates/sec point in
//                         the current artifact must reach floor-ratio of it
//                         (violations fail --check)
//     --floor-ratio X     fraction of the floor artifact's rate that must
//                         be sustained (default 0.7)
//     --quiet             suppress the per-claim summary table
//
// For each claim T0–T9 / T-VAL the tool parses the recorded rows,
// *recomputes* the fits (fit_cost_exponent / fit_cost_log) and applies
// the paper-shape verdict rules (src/report/verdict.cpp).  Outputs are a
// pure function of the artifacts: re-running on the same BENCH files is
// a byte-identical no-op.  Artifacts with a stale schema version are
// rejected with an error naming the file (re-run the bench).
//
// Exit status: 0 = ok, 1 = artifact error or --check verdict failure,
// 2 = usage error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "report/bench_data.h"
#include "report/markdown.h"
#include "report/verdict.h"
#include "util/table.h"

namespace {

using namespace memreal;
using namespace memreal::report;

struct Options {
  std::string bench_dir = ".";
  std::string report_path = "docs/REPORT.md";
  std::string experiments_path = "EXPERIMENTS.md";
  bool write_report = true;
  bool write_experiments = true;
  bool check = false;
  std::string shard_floor_path;
  double floor_ratio = 0.7;
  bool quiet = false;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr,
               "memreal_report: %s (see the header of "
               "tools/memreal_report.cpp for usage)\n",
               what.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--bench-dir") {
      o.bench_dir = next();
    } else if (flag == "--report") {
      o.report_path = next();
    } else if (flag == "--experiments") {
      o.experiments_path = next();
    } else if (flag == "--no-report") {
      o.write_report = false;
    } else if (flag == "--no-experiments") {
      o.write_experiments = false;
    } else if (flag == "--check") {
      o.check = true;
    } else if (flag == "--shard-floor") {
      o.shard_floor_path = next();
    } else if (flag == "--floor-ratio") {
      char* end = nullptr;
      const char* v = next();
      o.floor_ratio = std::strtod(v, &end);
      if (end == v || *end != '\0' || o.floor_ratio <= 0.0) {
        usage_error("--floor-ratio must be a positive number");
      }
    } else if (flag == "--quiet") {
      o.quiet = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  return o;
}

/// Writes `content` to `path`, creating parent directories.  Skips the
/// write when the file already holds exactly `content` (so a re-run does
/// not even touch mtimes).
bool write_file(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (buf.str() == content) return true;
    }
  }
  std::ofstream out(path);
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

int run(const Options& o) {
  const BenchSet set = load_bench_dir(o.bench_dir);
  const std::vector<ClaimResult> results = evaluate_claims(set);

  if (!o.quiet) {
    Table t({"claim", "bench", "verdict", "headline"});
    for (const ClaimResult& r : results) {
      t.add_row({r.spec->id, "bench_" + r.spec->bench,
                 status_name(r.status),
                 r.headline.empty() ? "-" : r.headline});
    }
    t.print(std::cout);
    for (const ClaimResult& r : results) {
      if (r.passed()) continue;
      std::cout << r.spec->id << ":\n";
      for (const std::string& line : r.checks) {
        std::cout << "  " << line << "\n";
      }
    }
  }

  if (o.write_report) {
    if (!write_file(o.report_path, render_report(set, results))) {
      std::fprintf(stderr, "memreal_report: cannot write '%s'\n",
                   o.report_path.c_str());
      return 1;
    }
    if (!o.quiet) std::cout << "wrote " << o.report_path << "\n";
  }

  if (o.write_experiments) {
    std::ifstream in(o.experiments_path);
    if (!in) {
      std::fprintf(stderr, "memreal_report: cannot read '%s'\n",
                   o.experiments_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();
    std::map<std::string, std::string> blocks;
    for (const ClaimResult& r : results) {
      blocks[r.spec->id] = render_claim_block(set, r);
    }
    const MarkerRewrite rw = rewrite_marker_blocks(buf.str(), blocks);
    if (!write_file(o.experiments_path, rw.text)) {
      std::fprintf(stderr, "memreal_report: cannot write '%s'\n",
                   o.experiments_path.c_str());
      return 1;
    }
    if (!o.quiet) {
      std::cout << "rewrote " << rw.rewritten.size() << " marker block(s) in "
                << o.experiments_path;
      if (!rw.unmatched.empty()) {
        std::cout << " (no markers for:";
        for (const std::string& id : rw.unmatched) std::cout << " " << id;
        std::cout << ")";
      }
      std::cout << "\n";
    }
  }

  bool floor_ok = true;
  if (!o.shard_floor_path.empty()) {
    const BenchFile baseline = load_bench_file(o.shard_floor_path);
    const FloorResult floor =
        check_throughput_floor(set, baseline, o.floor_ratio);
    floor_ok = floor.ok;
    if (!o.quiet || !floor.ok) {
      std::cout << "throughput floor vs " << o.shard_floor_path << ":\n";
      for (const std::string& line : floor.lines) {
        std::cout << "  " << line << "\n";
      }
    }
  }

  if (o.check) {
    std::size_t failures = 0;
    for (const ClaimResult& r : results) failures += !r.passed();
    if (failures > 0) {
      std::fprintf(stderr,
                   "memreal_report: %zu claim verdict(s) not PASS\n",
                   failures);
      return 1;
    }
    if (!floor_ok) {
      std::fprintf(stderr,
                   "memreal_report: throughput floor violated (see the "
                   "floor lines above)\n");
      return 1;
    }
    std::cout << "all " << results.size() << " claim verdicts PASS\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    return run(o);
  } catch (const ReportError& e) {
    std::fprintf(stderr, "memreal_report: %s\n", e.what());
    return 1;
  } catch (const JsonParseError& e) {
    std::fprintf(stderr, "memreal_report: %s\n", e.what());
    return 1;
  }
}
