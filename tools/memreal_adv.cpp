// memreal_adv — adversarial performance search over the allocator
// registry: maximize realized cost ratio against the lower-bound floor,
// seeded from the scenario zoo.  Run with --help for usage.  Exit
// status: 0 = clean, 1 = replay regression or --min-gain not met,
// 2 = usage error.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "perfadv/campaign.h"
#include "perfadv/search.h"
#include "perfadv/zoo.h"
#include "util/check.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace memreal;

constexpr const char* kUsage = R"(memreal_adv [options]
  --seed N           campaign seed (default 1)
  --iters N          mutation evaluations per allocator (default 300)
  --updates N        churn budget for zoo seed sequences (default 300)
  --allocators a,b   comma-separated registry names (default: all fuzz
                     targets)
  --scenarios a,b    zoo scenarios to seed from (default: every scenario
                     compatible with the target allocator; a named
                     incompatible scenario is an error listing the
                     compatible set)
  --engine E         evaluation engine: "release" (default, cost-bit-
                     identical and ~10x faster) or "validated"
  --eps X            override the per-allocator default eps
  --capacity-log2 N  memory capacity 2^N ticks (default 40)
  --max-edits N      mutator edits per mutant (default 4)
  --threads N        worker threads (default: all cores)
  --no-shrink        keep the found adversary unminimized
  --shrink-checks N  predicate-evaluation ceiling per shrink (default 1500)
  --corpus DIR       persist shrunk adversaries under DIR as replayable
                     perf-ratio traces (default: don't persist)
  --replay DIR       replay a perf-ratio corpus instead of searching;
                     exits 1 if any replayed ratio regressed
  --retain X         replay pass bar: replayed >= X * recorded (default
                     0.99)
  --min-gain X       exit 1 unless every allocator's found ratio beats
                     its zoo baseline by at least X (CI smoke)
  --list-scenarios   print the scenario zoo (with per-allocator
                     compatibility) and exit
  --json             emit results as JSON instead of a table
  --quiet            suppress the progress banner

Determinism: every result is a pure function of (--seed, allocator name,
search shape flags); thread count only changes the wall clock, and a
single-allocator run reproduces that allocator's campaign member
bit-exactly.
)";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "memreal_adv: %s (run with --help for usage)\n",
               what.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value[0] == '-' || value[0] == '+') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

void print_scenarios(const AdvCampaignConfig& cfg) {
  std::vector<std::string> names = cfg.allocators;
  if (names.empty()) {
    for (const AllocatorInfo& info : allocator_infos()) {
      if (info.fuzz_default) names.push_back(info.name);
    }
  }
  for (const ScenarioInfo& s : scenario_infos()) {
    std::printf("%-18s %s\n", s.name.c_str(), s.summary.c_str());
  }
  std::printf("\n");
  Table t({"allocator", "eps", "compatible scenarios"});
  for (const std::string& name : names) {
    const AllocatorInfo info = allocator_info(name);
    const double eps =
        adv_search_eps(info, cfg.base.eps, cfg.base.capacity);
    std::string compat;
    for (const std::string& s :
         compatible_scenarios(info, eps, cfg.base.capacity)) {
      if (!compat.empty()) compat += ",";
      compat += s;
    }
    t.add_row({name, Table::num(eps, 5), compat});
  }
  t.print(std::cout);
}

int run_replay(const std::string& dir, double retain, bool json) {
  const std::vector<AdvReplay> replays = replay_adversaries(dir, retain);
  bool all_ok = true;
  if (json) {
    Json arr = Json::array();
    for (const AdvReplay& r : replays) {
      arr.push(Json::object()
                   .set("path", r.path)
                   .set("allocator", r.allocator)
                   .set("engine", r.engine)
                   .set("recorded_ratio", r.recorded_ratio)
                   .set("replayed_ratio", r.replayed_ratio)
                   .set("budget_ceiling", r.budget_ceiling)
                   .set("ok", r.ok));
      all_ok = all_ok && r.ok;
    }
    std::printf("%s\n", arr.dump(2).c_str());
  } else {
    Table t({"trace", "allocator", "engine", "recorded", "replayed", "ok"});
    for (const AdvReplay& r : replays) {
      t.add_row({r.path, r.allocator, r.engine, Table::num(r.recorded_ratio, 4),
                 Table::num(r.replayed_ratio, 4), r.ok ? "yes" : "NO"});
      all_ok = all_ok && r.ok;
    }
    t.print(std::cout);
    std::printf("memreal_adv replay: %zu adversaries, %s\n", replays.size(),
                all_ok ? "all ratios held" : "RATIO REGRESSION");
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  AdvCampaignConfig cfg;
  bool list_scenarios = false;
  bool json = false;
  bool quiet = false;
  double retain = 0.99;
  double min_gain = 0;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (flag == "--seed") {
      cfg.base.seed = parse_u64(flag, value());
    } else if (flag == "--iters") {
      cfg.base.iterations = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--updates") {
      cfg.base.updates = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--allocators") {
      cfg.allocators = split_csv(value());
    } else if (flag == "--scenarios") {
      cfg.base.scenarios = split_csv(value());
    } else if (flag == "--engine") {
      cfg.base.engine = value();
      if (cfg.base.engine != "release" && cfg.base.engine != "validated") {
        usage_error("--engine must be 'release' or 'validated'");
      }
    } else if (flag == "--eps") {
      cfg.base.eps = parse_double(flag, value());
      if (cfg.base.eps <= 0 || cfg.base.eps >= 1) {
        usage_error("--eps must be in (0, 1)");
      }
    } else if (flag == "--capacity-log2") {
      const std::uint64_t log2 = parse_u64(flag, value());
      if (log2 < 10 || log2 > 62) usage_error("--capacity-log2 out of range");
      cfg.base.capacity = Tick{1} << log2;
    } else if (flag == "--max-edits") {
      cfg.base.max_edits = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--threads") {
      cfg.threads = static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--no-shrink") {
      cfg.base.shrink = false;
    } else if (flag == "--shrink-checks") {
      cfg.base.max_shrink_checks =
          static_cast<std::size_t>(parse_u64(flag, value()));
    } else if (flag == "--corpus") {
      cfg.corpus_dir = value();
    } else if (flag == "--replay") {
      replay_dir = value();
    } else if (flag == "--retain") {
      retain = parse_double(flag, value());
    } else if (flag == "--min-gain") {
      min_gain = parse_double(flag, value());
    } else if (flag == "--list-scenarios") {
      list_scenarios = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  try {
    if (list_scenarios) {
      print_scenarios(cfg);
      return 0;
    }
    if (!replay_dir.empty()) return run_replay(replay_dir, retain, json);

    if (!quiet && !json) {
      std::printf("memreal_adv: seed=%llu iters=%zu updates=%zu engine=%s "
                  "capacity=2^%d threads=%zu\n",
                  static_cast<unsigned long long>(cfg.base.seed),
                  cfg.base.iterations, cfg.base.updates,
                  cfg.base.engine.c_str(), std::countr_zero(cfg.base.capacity),
                  cfg.threads);
    }
    const AdvCampaign campaign = run_adv_campaign(cfg);

    bool gain_ok = true;
    if (json) {
      Json arr = Json::array();
      for (std::size_t i = 0; i < campaign.results.size(); ++i) {
        const AdvResult& r = campaign.results[i];
        gain_ok = gain_ok && (min_gain <= 0 || r.gain() >= min_gain);
        Json row = Json::object()
                       .set("allocator", r.allocator)
                       .set("engine", r.engine)
                       .set("eps", r.eps)
                       .set("seed", r.seed)
                       .set("baseline_scenario", r.baseline_scenario)
                       .set("baseline_ratio", r.baseline_ratio)
                       .set("found_ratio", r.found_ratio)
                       .set("gain", r.gain())
                       .set("shrunk_ratio", r.shrunk_ratio)
                       .set("original_updates",
                            static_cast<std::uint64_t>(r.original_updates))
                       .set("shrunk_updates",
                            static_cast<std::uint64_t>(r.shrunk_updates))
                       .set("evaluations",
                            static_cast<std::uint64_t>(r.evaluations))
                       .set("budget_ceiling", r.budget_ceiling);
        if (!campaign.corpus_paths[i].empty()) {
          row.set("corpus", campaign.corpus_paths[i]);
        }
        arr.push(std::move(row));
      }
      std::printf("%s\n", arr.dump(2).c_str());
    } else {
      Table t({"allocator", "eps", "baseline (scenario)", "found", "gain",
               "shrunk", "updates", "budget"});
      for (std::size_t i = 0; i < campaign.results.size(); ++i) {
        const AdvResult& r = campaign.results[i];
        gain_ok = gain_ok && (min_gain <= 0 || r.gain() >= min_gain);
        t.add_row({r.allocator, Table::num(r.eps, 5),
                   Table::num(r.baseline_ratio, 3) + " (" +
                       r.baseline_scenario + ")",
                   Table::num(r.found_ratio, 3),
                   Table::num(r.gain(), 2) + "x",
                   Table::num(r.shrunk_ratio, 3),
                   std::to_string(r.original_updates) + " -> " +
                       std::to_string(r.shrunk_updates),
                   Table::num(r.budget_ceiling, 1)});
      }
      t.print(std::cout);
      for (std::size_t i = 0; i < campaign.corpus_paths.size(); ++i) {
        if (!campaign.corpus_paths[i].empty()) {
          std::printf("corpus: %s\n", campaign.corpus_paths[i].c_str());
        }
      }
      if (min_gain > 0 && !gain_ok) {
        std::printf("memreal_adv: FAIL — some allocator missed --min-gain "
                    "%.2f\n",
                    min_gain);
      }
    }
    return min_gain > 0 && !gain_ok ? 1 : 0;
  } catch (const InvariantViolation& e) {
    std::fprintf(stderr, "memreal_adv: %s\n", e.what());
    return 2;
  }
}
