// memreal_serve — closed-loop load generator for the online serving
// layer (src/serve).  Sweeps client-thread counts x target request rates
// against a ServingEngine, records per-request latency into exact
// Quantiles, and writes the schema-2 BENCH_serve.json artifact that
// memreal_report turns into the T-SERVE claim.  Also runs (by default)
// the deterministic differential: serve_deterministic() must reproduce
// the batch ShardedEngine bit-for-bit for every registry allocator on
// both engine flavors.
//
// Run with --help for usage.  Exit status 0 = clean, 1 = invariant
// violation or verify mismatch, 2 = usage error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "alloc/registry.h"
#include "obs/metrics.h"
#include "perfadv/zoo.h"
#include "serve/serving_engine.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/churn.h"

namespace {

using namespace memreal;

constexpr const char* kUsage = R"(memreal_serve [options]
  --allocator NAME   registry allocator for every cell (default simple)
  --workload W       client request stream: churn (default) or any
                     tick-native scenario-zoo name (memreal_adv
                     --list-scenarios); a zoo workload the allocator
                     cannot serve errors up front with the compatible
                     list
  --engine E         cell engine: validated (default), release or arena
                     (arena = byte-backed cells, alias for --arena,
                     matching memreal_shard / memreal_fuzz)
  --arena            back every shard's cell with a real byte arena;
                     lowers the default per-shard capacity to 2^22 ticks
                     (override with --capacity-log2)
  --bytes-per-tick N byte-space granule for --arena (default 8)
  --shards N         cell count = worker threads (default 4)
  --clients LIST     comma-separated client-thread counts to sweep
                     (default 1,2,4)
  --qps LIST         comma-separated target request rates; 0 = closed-loop
                     saturation, no pacing (default 0)
  --updates N        total requests per sweep point (default 20000)
  --eps X            free-space parameter (default 0.015625)
  --seed N           workload + allocator seed (default 1)
  --capacity-log2 N  per-shard capacity 2^N ticks (default 40; 22 under
                     --arena)
  --skip-verify      skip the deterministic differential (every registry
                     allocator x both engines vs the batch ShardedEngine)
  --verify-only      run only the differential, no latency sweep
  --json FILE        artifact path (default BENCH_serve.json, in
                     MEMREAL_BENCH_DIR if set; empty string disables)
  --metrics-out FILE JSON-lines metric snapshots: one line per sweep
                     point at quiescence, plus periodic lines while the
                     point runs when --metrics-interval is set
  --metrics-interval N
                     sampler period in milliseconds for --metrics-out
                     (0 = final snapshot per point only; default 0)
  --prom-out FILE    Prometheus text dump of the last sweep point
  --metrics-summary  print the metric summary table after the sweep
  --skip-overhead    skip the metrics-overhead measurement (saturation
                     throughput metrics-on vs metrics-off)
  --quiet            suppress the tables (summary lines + JSON only)

Latency is measured per request from submit() to the future resolving
(queueing + apply), reported as exact p50/p99/p999 from merged per-client
Quantiles.  Sweep points run with the metric registry wired; after each
point the summed per-shard cell counters are checked against the merged
RunStats integers tick-for-tick (the metrics-consistency series).
MEMREAL_FAST=1 shrinks the sweep for smoke runs.
)";

struct Options {
  std::string allocator = "simple";
  std::string workload = "churn";
  std::string engine = "validated";
  bool arena = false;
  Tick bytes_per_tick = 8;
  std::size_t shards = 4;
  std::vector<std::size_t> clients = {1, 2, 4};
  std::vector<double> qps = {0.0};
  std::size_t updates = 20'000;
  double eps = 1.0 / 64;
  std::uint64_t seed = 1;
  unsigned capacity_log2 = 40;
  bool capacity_log2_set = false;
  bool verify = true;
  bool verify_only = false;
  std::string json_path = "BENCH_serve.json";
  bool json_path_set = false;
  std::string metrics_out;
  std::size_t metrics_interval_ms = 0;
  std::string prom_out;
  bool metrics_summary = false;
  bool overhead = true;
  bool quiet = false;
};

bool fast_mode() {
  const char* v = std::getenv("MEMREAL_FAST");
  return v != nullptr && v[0] == '1';
}

std::string git_describe() {
  const char* v = std::getenv("MEMREAL_GIT_DESCRIBE");
  if (v != nullptr && v[0] != '\0') return v;
#ifdef MEMREAL_GIT_DESCRIBE
  return MEMREAL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "memreal_serve: %s (run with --help for usage)\n",
               what.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value[0] == '-' || value[0] == '+') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

std::vector<std::string> split_list(const std::string& flag,
                                    const char* value) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (cur.empty()) usage_error("empty element in " + flag + " list");
      out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--allocator") {
      o.allocator = next();
    } else if (flag == "--engine") {
      o.engine = next();
      if (o.engine == "arena") {
        o.engine = "validated";
        o.arena = true;
      } else if (o.engine != "validated" && o.engine != "release") {
        usage_error("--engine must be 'validated', 'release', or 'arena'");
      }
    } else if (flag == "--arena") {
      o.arena = true;
    } else if (flag == "--bytes-per-tick") {
      o.bytes_per_tick = parse_u64(flag, next());
      if (o.bytes_per_tick == 0) usage_error("--bytes-per-tick must be >= 1");
    } else if (flag == "--shards") {
      o.shards = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--clients") {
      o.clients.clear();
      for (const std::string& e : split_list(flag, next())) {
        o.clients.push_back(
            static_cast<std::size_t>(parse_u64(flag, e.c_str())));
      }
    } else if (flag == "--qps") {
      o.qps.clear();
      for (const std::string& e : split_list(flag, next())) {
        o.qps.push_back(parse_double(flag, e.c_str()));
      }
    } else if (flag == "--workload") {
      o.workload = next();
    } else if (flag == "--updates") {
      o.updates = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--eps") {
      o.eps = parse_double(flag, next());
    } else if (flag == "--seed") {
      o.seed = parse_u64(flag, next());
    } else if (flag == "--capacity-log2") {
      const std::uint64_t v = parse_u64(flag, next());
      if (v < 10 || v > 50) usage_error("--capacity-log2 must be in [10, 50]");
      o.capacity_log2 = static_cast<unsigned>(v);
      o.capacity_log2_set = true;
    } else if (flag == "--skip-verify") {
      o.verify = false;
    } else if (flag == "--verify-only") {
      o.verify_only = true;
    } else if (flag == "--json") {
      o.json_path = next();
      o.json_path_set = true;
    } else if (flag == "--metrics-out") {
      o.metrics_out = next();
    } else if (flag == "--metrics-interval") {
      o.metrics_interval_ms = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--prom-out") {
      o.prom_out = next();
    } else if (flag == "--metrics-summary") {
      o.metrics_summary = true;
    } else if (flag == "--skip-overhead") {
      o.overhead = false;
    } else if (flag == "--quiet") {
      o.quiet = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (o.shards == 0) usage_error("--shards must be >= 1");
  if (o.clients.empty()) usage_error("--clients list is empty");
  for (const std::size_t c : o.clients) {
    if (c == 0) usage_error("--clients entries must be >= 1");
  }
  for (const double q : o.qps) {
    if (q < 0) usage_error("--qps entries must be >= 0 (0 = saturation)");
  }
  if (o.arena && !o.capacity_log2_set) o.capacity_log2 = 22;
  if (o.shards > (std::numeric_limits<Tick>::max() >> o.capacity_log2)) {
    usage_error("--shards x 2^capacity-log2 overflows the tick space");
  }
  if (o.eps <= 0.0 || o.eps >= 1.0) usage_error("--eps must be in (0, 1)");
  if (o.verify_only && !o.verify) {
    usage_error("--verify-only and --skip-verify are mutually exclusive");
  }
  if (o.workload != "churn") {
    const ScenarioInfo* s = find_scenario(o.workload);
    if (s == nullptr) {
      std::string zoo;
      for (const std::string& n : scenario_names()) zoo += ", " + n;
      usage_error("unknown workload '" + o.workload + "' (known: churn" +
                  zoo + ")");
    }
    if (s->byte_mode) {
      usage_error("workload '" + o.workload +
                  "' is byte-addressed; the serving layer drives "
                  "tick-native streams (use memreal_shard for byte "
                  "workloads)");
    }
    const Tick shard_capacity = Tick{1} << o.capacity_log2;
    const std::string why = scenario_incompatibility(
        o.workload, allocator_info(o.allocator), o.eps, shard_capacity);
    if (!why.empty()) {
      std::string compat;
      for (const std::string& n : compatible_scenarios(
               allocator_info(o.allocator), o.eps, shard_capacity)) {
        const ScenarioInfo* info = find_scenario(n);
        if (info != nullptr && info->byte_mode) continue;
        if (!compat.empty()) compat += ", ";
        compat += n;
      }
      usage_error(why + " (compatible scenarios for " + o.allocator + ": " +
                  (compat.empty() ? "none at this eps" : compat) + ")");
    }
  }
  return o;
}

ShardedConfig base_config(const Options& o, const std::string& allocator,
                          const std::string& engine, Tick shard_capacity) {
  ShardedConfig c;
  c.engine = engine;
  c.allocator = allocator;
  c.arena = o.arena;
  c.bytes_per_tick = o.bytes_per_tick;
  c.params.eps = o.eps;
  c.params.seed = o.seed;
  c.shards = o.shards;
  c.shard_capacity = shard_capacity;
  c.eps = o.eps;
  return c;
}

/// Load level that fills with at most ~`max_items` items of the band's
/// mean size: tiny-item families (tinyslab, flexhash, rsum bands) would
/// otherwise need millions of fill inserts to hit a mass-fraction target.
double bounded_load(double want, Tick min_size, Tick max_size, Tick capacity,
                    std::size_t max_items) {
  const double mean = (static_cast<double>(min_size) +
                       static_cast<double>(max_size)) / 2.0;
  const double cap = static_cast<double>(max_items) * mean /
                     static_cast<double>(capacity);
  return std::min(want, cap);
}

/// One client's request stream: sizes from the allocator's registered
/// band over the *shard* capacity, live-mass budget a 1/clients slice of
/// the global capacity, ids remapped into a per-client residue class so
/// concurrent clients never race an insert against its own delete.
Sequence client_workload(const Options& o, Tick shard_capacity,
                         std::size_t clients, std::size_t client,
                         std::size_t point) {
  const AllocatorInfo info = allocator_info(o.allocator);
  const Tick min_size = info.sizes.min_size(o.eps, shard_capacity);
  const Tick max_size = info.sizes.max_size(o.eps, shard_capacity) - 1;
  const Tick capacity = shard_capacity * o.shards / clients;
  const std::size_t updates = std::max<std::size_t>(50, o.updates / clients);
  const double load = bounded_load(0.5, min_size, max_size, capacity,
                                   std::max<std::size_t>(updates, 1'000));
  SplitMix64 mix(o.seed + 7919 * point + client);
  Sequence s;
  if (o.workload != "churn") {
    // Zoo scenario: band over the shard capacity like the churn path,
    // budget and fill bounded to this client's slice.
    ScenarioParams p = scenario_params_for(info, o.eps, shard_capacity,
                                           updates, mix.next());
    p.capacity = capacity;
    p.target_load = load;
    s = make_scenario(o.workload, p);
  } else if (info.sizes.fixed_palette) {
    DiscreteChurnConfig c;
    c.capacity = capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = load;
    c.churn_updates = updates;
    c.seed = mix.next();
    s = make_discrete_churn(c);
  } else {
    ChurnConfig c;
    c.capacity = capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = load;
    c.churn_updates = updates;
    c.seed = mix.next();
    s = make_churn(c);
  }
  for (Update& u : s.updates) u.id = u.id * clients + client;
  return s;
}

/// Cell-metric label used by the sweep: memreal_serve drives the churn
/// workload, and arena-backed cells register under "<engine>+arena".
std::string engine_label(const Options& o) {
  return o.arena ? o.engine + "+arena" : o.engine;
}

/// Exactness check: the per-shard cell counters must equal the engine's
/// per-shard RunStats integers tick-for-tick, and so must their sums vs
/// the merged global block.  Any drift means an instrumentation site was
/// skipped or double-counted.
bool counters_match_stats(const Options& o, const ShardedRunStats& stats) {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  std::uint64_t updates = 0;
  std::uint64_t moved = 0;
  std::uint64_t umass = 0;
  for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
    obs::MetricLabels l;
    l.allocator = o.allocator;
    l.engine = engine_label(o);
    l.shard = static_cast<int>(s);
    l.workload = o.workload;
    const RunStats& ps = stats.per_shard[s];
    const std::uint64_t u =
        reg.counter("memreal_cell_updates_total", l)->value();
    const std::uint64_t m =
        reg.counter("memreal_cell_moved_ticks_total", l)->value();
    const std::uint64_t k =
        reg.counter("memreal_cell_update_ticks_total", l)->value();
    if (u != ps.updates || m != static_cast<std::uint64_t>(ps.moved_mass) ||
        k != static_cast<std::uint64_t>(ps.update_mass) ||
        reg.counter("memreal_cell_inserts_total", l)->value() != ps.inserts ||
        reg.counter("memreal_cell_deletes_total", l)->value() != ps.deletes ||
        reg.counter("memreal_cell_moved_bytes_total", l)->value() !=
            static_cast<std::uint64_t>(ps.moved_bytes) ||
        reg.histogram("memreal_cell_cost", l)->count() != ps.updates) {
      return false;
    }
    updates += u;
    moved += m;
    umass += k;
  }
  return updates == stats.global.updates &&
         moved == static_cast<std::uint64_t>(stats.global.moved_mass) &&
         umass == static_cast<std::uint64_t>(stats.global.update_mass);
}

/// One JSON line of --metrics-out: point context + full registry snapshot.
void write_snapshot_line(std::ostream& out, std::size_t point,
                         std::size_t clients, double elapsed_ms, bool final) {
  Json line = Json::object();
  line.set("point", static_cast<std::uint64_t>(point))
      .set("clients", static_cast<std::uint64_t>(clients))
      .set("elapsed_ms", elapsed_ms)
      .set("final", final)
      .set("metrics",
           obs::MetricRegistry::global().snapshot_json().at("metrics"));
  out << line.dump(0) << "\n";
  out.flush();
}

struct PointResult {
  std::size_t clients = 0;
  double target_qps = 0;
  std::size_t updates = 0;
  double wall_seconds = 0;
  double achieved_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  double mean_us = 0;
  bool counters_match = true;  ///< only meaningful when metrics wired
  std::size_t queue_high_water = 0;
};

/// One closed-loop sweep point: `clients` threads drive a fresh engine,
/// each waiting on every future (optionally paced to target_qps total).
/// With `wire_metrics` the registry is reset and wired through the cell
/// seam; `snap_out` (with optional periodic sampler) receives JSON-lines
/// snapshots and the point ends with the counters-vs-stats exactness
/// check.
PointResult run_point(const Options& o, Tick shard_capacity,
                      std::size_t clients, double target_qps,
                      std::size_t point_index, bool wire_metrics,
                      std::ostream* snap_out) {
  ShardedConfig config = base_config(o, o.allocator, o.engine, shard_capacity);
  if (wire_metrics) {
    obs::MetricRegistry::global().reset();
    config.metrics = &obs::MetricRegistry::global();
    config.workload_label = o.workload;
  }
  ServingEngine engine(config);

  std::vector<Sequence> streams;
  streams.reserve(clients);
  std::size_t total = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    streams.push_back(
        client_workload(o, shard_capacity, clients, c, point_index));
    total += streams.back().size();
  }

  std::vector<Quantiles> lat(clients);
  std::vector<StreamingStats> agg(clients);
  std::mutex error_mu;
  std::exception_ptr first_error;

  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  // Periodic snapshot sampler: wakes every --metrics-interval ms and
  // appends one JSON line while the point runs.  The final (quiescent)
  // line is written by the main thread after drain.
  std::mutex sampler_mu;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
  std::thread sampler;
  if (snap_out != nullptr && o.metrics_interval_ms > 0) {
    sampler = std::thread([&] {
      std::unique_lock<std::mutex> lock(sampler_mu);
      while (!sampler_cv.wait_for(
          lock, std::chrono::milliseconds(o.metrics_interval_ms),
          [&] { return sampler_stop; })) {
        const double ms = std::chrono::duration<double, std::milli>(
                              clock::now() - start).count();
        write_snapshot_line(*snap_out, point_index, clients, ms, false);
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Pacing: the target rate is split evenly across clients.
      const double interval_s =
          target_qps > 0 ? static_cast<double>(clients) / target_qps : 0.0;
      auto next_tick = clock::now();
      lat[c].reserve(streams[c].size());
      try {
        for (const Update& u : streams[c].updates) {
          if (interval_s > 0) {
            next_tick += std::chrono::duration_cast<clock::duration>(
                std::chrono::duration<double>(interval_s));
            std::this_thread::sleep_until(next_tick);
          }
          const auto t0 = clock::now();
          const double cost = engine.submit(u).get();
          const auto t1 = clock::now();
          (void)cost;
          const double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          lat[c].add(us);
          agg[c].add(us);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  engine.drain();
  const auto end = clock::now();
  if (sampler.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mu);
      sampler_stop = true;
    }
    sampler_cv.notify_one();
    sampler.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  bool counters_match = true;
  std::size_t queue_high_water = 0;
  if (wire_metrics) {
    // drain() leaves the workers idle with every update applied, so the
    // relaxed counters are quiesced: compare them against the engine's
    // own stats before tearing anything down.
    const ShardedRunStats sstats = engine.stats();
    counters_match = counters_match_stats(o, sstats);
    for (std::size_t s = 0; s < o.shards; ++s) {
      queue_high_water = std::max(queue_high_water, engine.queue_high_water(s));
    }
    if (snap_out != nullptr) {
      const double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      write_snapshot_line(*snap_out, point_index, clients, ms, true);
    }
  }
  engine.audit();
  engine.stop();

  Quantiles merged;
  StreamingStats stats;
  for (std::size_t c = 0; c < clients; ++c) {
    merged.merge(lat[c]);
    stats.merge(agg[c]);
  }

  PointResult r;
  r.clients = clients;
  r.target_qps = target_qps;
  r.updates = total;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.achieved_qps =
      r.wall_seconds > 0 ? static_cast<double>(total) / r.wall_seconds : 0;
  r.p50_us = merged.quantile(0.5);
  r.p99_us = merged.quantile(0.99);
  r.p999_us = merged.quantile(0.999);
  r.max_us = merged.quantile(1.0);
  r.mean_us = stats.mean();
  r.counters_match = counters_match;
  r.queue_high_water = queue_high_water;
  return r;
}

struct OverheadResult {
  std::size_t clients = 0;
  double qps_off = 0;
  double qps_on = 0;
  double ratio = 0;
};

double best_of(const std::vector<double>& v) {
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

/// Metrics overhead at saturation: best-of-N closed-loop throughput
/// with the registry unwired vs wired.  Reps are interleaved rep-by-rep
/// so thermal / scheduler drift hits both arms equally, and each arm
/// takes its best rep: interference on a shared box only ever slows a
/// run down, so the max is the estimator of uncontended speed and a
/// median would fold unrelated stalls into the reported overhead.
OverheadResult measure_overhead(const Options& o, Tick shard_capacity,
                                std::size_t reps, std::size_t point_base) {
  OverheadResult r;
  r.clients = *std::max_element(o.clients.begin(), o.clients.end());
  std::vector<double> off;
  std::vector<double> on;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Same point index for both arms = identical request streams, and
    // the arm order flips every rep so monotone drift (frequency
    // scaling, cache warmth) cancels instead of always taxing one arm.
    const std::size_t point = point_base + rep;
    auto qps = [&](bool wired) {
      return run_point(o, shard_capacity, r.clients, 0.0, point, wired,
                       nullptr)
          .achieved_qps;
    };
    if (rep % 2 == 0) {
      off.push_back(qps(false));
      on.push_back(qps(true));
    } else {
      on.push_back(qps(true));
      off.push_back(qps(false));
    }
  }
  r.qps_off = best_of(off);
  r.qps_on = best_of(on);
  r.ratio = r.qps_off > 0 ? r.qps_on / r.qps_off : 0;
  return r;
}

struct VerifyResult {
  std::string allocator;
  std::string engine;
  std::size_t updates = 0;
  bool costs_equal = false;
  bool layouts_equal = false;
};

bool same_layout(LayoutStore& a, LayoutStore& b) {
  const auto la = a.snapshot();
  const auto lb = b.snapshot();
  if (la.size() != lb.size()) return false;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i].id != lb[i].id || la[i].offset != lb[i].offset ||
        la[i].size != lb[i].size || la[i].extent != lb[i].extent) {
      return false;
    }
  }
  return true;
}

bool same_stats(const ShardedRunStats& a, const ShardedRunStats& b) {
  if (a.global.updates != b.global.updates ||
      a.global.moved_mass != b.global.moved_mass ||
      a.global.update_mass != b.global.update_mass ||
      a.fallback_routes != b.fallback_routes ||
      a.per_shard.size() != b.per_shard.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.per_shard.size(); ++s) {
    const RunStats& x = a.per_shard[s];
    const RunStats& y = b.per_shard[s];
    // The per-shard update order is identical, so every derived double
    // must compare bitwise equal.
    if (x.updates != y.updates || x.moved_mass != y.moved_mass ||
        x.update_mass != y.update_mass ||
        x.cost.count() != y.cost.count() ||
        x.cost.mean() != y.cost.mean() ||
        x.cost.variance() != y.cost.variance() ||
        x.cost.min() != y.cost.min() || x.cost.max() != y.cost.max() ||
        x.cost.sum() != y.cost.sum()) {
      return false;
    }
  }
  return true;
}

/// The deterministic differential for one (allocator, engine) pair: the
/// served sequence must leave costs and layouts bit-identical to the
/// batch ShardedEngine.
VerifyResult verify_pair(const Options& o, const std::string& allocator,
                         const std::string& engine, std::size_t updates) {
  // Tick-space verify runs on wide cells so every allocator's size
  // classes resolve, independent of the latency sweep's geometry.
  const Tick shard_capacity = o.arena ? Tick{1} << o.capacity_log2
                                      : Tick{1} << 40;
  const AllocatorInfo info = allocator_info(allocator);
  const Tick min_size = info.sizes.min_size(o.eps, shard_capacity);
  const Tick max_size = info.sizes.max_size(o.eps, shard_capacity) - 1;
  const Tick capacity = shard_capacity * o.shards;
  const double load =
      bounded_load(0.7, min_size, max_size, capacity, 1'000);
  Sequence seq;
  if (info.sizes.fixed_palette) {
    DiscreteChurnConfig c;
    c.capacity = capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = load;
    c.churn_updates = updates;
    c.seed = o.seed;
    seq = make_discrete_churn(c);
  } else {
    ChurnConfig c;
    c.capacity = capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = load;
    c.churn_updates = updates;
    c.seed = o.seed;
    seq = make_churn(c);
  }

  const ShardedConfig config = base_config(o, allocator, engine,
                                           shard_capacity);
  ShardedEngine batch(config);
  const ShardedRunStats want = batch.run(seq);
  batch.audit();

  ServingEngine serve(config);
  (void)serve_deterministic(serve, seq, /*lanes=*/3, o.seed + 1);
  const ShardedRunStats got = serve.stats();
  serve.audit();

  VerifyResult r;
  r.allocator = allocator;
  r.engine = engine;
  r.updates = seq.size();
  r.costs_equal = same_stats(got, want);
  r.layouts_equal = true;
  for (std::size_t s = 0; s < batch.shard_count(); ++s) {
    r.layouts_equal &=
        same_layout(batch.memory(s), serve.sharded().memory(s));
  }
  serve.stop();
  return r;
}

int run(const Options& o) {
  const bool fast = fast_mode();
  const Tick shard_capacity = Tick{1} << o.capacity_log2;
  const std::size_t sweep_updates =
      fast ? std::min<std::size_t>(o.updates, 2'000) : o.updates;
  const std::size_t verify_updates = fast ? 200 : 600;

  Json records = Json::array();
  bool verify_ok = true;

  if (o.verify) {
    Table vt({"allocator", "engine", "updates", "costs", "layouts"});
    Json rows = Json::array();
    for (const std::string& allocator : allocator_names()) {
      for (const std::string& engine : engine_names()) {
        const VerifyResult r =
            verify_pair(o, allocator, engine, verify_updates);
        verify_ok &= r.costs_equal && r.layouts_equal;
        vt.add_row({r.allocator, r.engine, std::to_string(r.updates),
                    r.costs_equal ? "identical" : "MISMATCH",
                    r.layouts_equal ? "identical" : "MISMATCH"});
        Json row = Json::object();
        row.set("allocator", r.allocator)
            .set("engine", r.engine)
            .set("shards", static_cast<std::uint64_t>(o.shards))
            .set("updates", static_cast<std::uint64_t>(r.updates))
            .set("costs_equal", std::uint64_t{r.costs_equal ? 1u : 0u})
            .set("layouts_equal",
                 std::uint64_t{r.layouts_equal ? 1u : 0u});
        rows.push(std::move(row));
      }
    }
    if (!o.quiet) {
      std::cout << "\ndeterministic differential vs batch ShardedEngine ("
                << o.shards << " shards, 3 lanes):\n";
      vt.print(std::cout);
    }
    std::cout << "deterministic verify: "
              << (verify_ok ? "every pair bit-identical"
                            : "MISMATCH (see table)")
              << "\n";
    Json rec = Json::object();
    rec.set("kind", "serve_verify")
        .set("claim", "T-SERVE")
        .set("series", "deterministic-verify")
        .set("lanes", std::uint64_t{3})
        .set("rows", std::move(rows));
    records.push(std::move(rec));
  }

  if (!o.verify_only) {
    std::ofstream snap_file;
    std::ostream* snap_out = nullptr;
    if (!o.metrics_out.empty()) {
      snap_file.open(o.metrics_out);
      if (!snap_file) {
        std::fprintf(stderr, "memreal_serve: cannot write '%s'\n",
                     o.metrics_out.c_str());
        return 1;
      }
      snap_out = &snap_file;
    }

    Table lt({"clients", "target_qps", "achieved_qps", "p50_us", "p99_us",
              "p999_us", "max_us", "mean_us"});
    Json rows = Json::array();
    Json consistency_rows = Json::array();
    bool metrics_ok = true;
    std::size_t point = 0;
    for (const std::size_t clients : o.clients) {
      for (const double qps : o.qps) {
        Options po = o;
        po.updates = sweep_updates;
        const PointResult r =
            run_point(po, shard_capacity, clients, qps, point++,
                      /*wire_metrics=*/true, snap_out);
        metrics_ok &= r.counters_match;
        Json crow = Json::object();
        crow.set("clients", static_cast<std::uint64_t>(r.clients))
            .set("target_qps", r.target_qps)
            .set("updates", static_cast<std::uint64_t>(r.updates))
            .set("counters_match", std::uint64_t{r.counters_match ? 1u : 0u})
            .set("queue_high_water",
                 static_cast<std::uint64_t>(r.queue_high_water));
        consistency_rows.push(std::move(crow));
        lt.add_row({std::to_string(r.clients),
                    qps > 0 ? Table::num(qps, 6) : std::string("sat"),
                    Table::num(r.achieved_qps, 6), Table::num(r.p50_us, 4),
                    Table::num(r.p99_us, 4), Table::num(r.p999_us, 4),
                    Table::num(r.max_us, 4), Table::num(r.mean_us, 4)});
        Json row = Json::object();
        row.set("shards", static_cast<std::uint64_t>(o.shards))
            .set("clients", static_cast<std::uint64_t>(r.clients))
            .set("target_qps", r.target_qps)
            .set("achieved_qps", r.achieved_qps)
            .set("updates", static_cast<std::uint64_t>(r.updates))
            .set("wall_seconds", r.wall_seconds)
            .set("p50_us", r.p50_us)
            .set("p99_us", r.p99_us)
            .set("p999_us", r.p999_us)
            .set("max_us", r.max_us)
            .set("mean_us", r.mean_us);
        rows.push(std::move(row));
      }
    }
    if (!o.quiet) {
      std::cout << "\nlatency sweep (" << o.allocator << ", "
                << (o.arena ? "arena" : o.engine) << ", " << o.shards
                << " shards, " << sweep_updates
                << " requests per point):\n";
      lt.print(std::cout);
    }
    Json rec = Json::object();
    rec.set("kind", "serve_latency")
        .set("claim", "T-SERVE")
        .set("series", "latency-sweep")
        .set("allocator", o.allocator)
        .set("engine", o.arena ? "arena" : o.engine)
        .set("workload", o.workload)
        .set("rows", std::move(rows));
    records.push(std::move(rec));

    // Per-point exactness: summed per-shard cell counters == merged
    // RunStats totals, tick-for-tick.
    verify_ok &= metrics_ok;
    std::cout << "metrics consistency: "
              << (metrics_ok ? "counters equal RunStats on every point"
                             : "MISMATCH (counters drifted from RunStats)")
              << "\n";
    Json crec = Json::object();
    crec.set("kind", "serve_metrics")
        .set("claim", "T-SERVE")
        .set("series", "metrics-consistency")
        .set("allocator", o.allocator)
        .set("engine", o.arena ? "arena" : o.engine)
        .set("rows", std::move(consistency_rows));
    records.push(std::move(crec));

    if (o.overhead) {
      Options po = o;
      po.updates = sweep_updates;
      const std::size_t reps = fast ? 3 : 9;
      const OverheadResult ov =
          measure_overhead(po, shard_capacity, reps, point);
      if (!o.quiet) {
        std::cout << "\nmetrics overhead at saturation (" << ov.clients
                  << " clients, best of " << reps << "): off "
                  << Table::num(ov.qps_off, 6) << " qps, on "
                  << Table::num(ov.qps_on, 6) << " qps, ratio "
                  << Table::num(ov.ratio, 4) << "\n";
      }
      Json orow = Json::object();
      orow.set("clients", static_cast<std::uint64_t>(ov.clients))
          .set("updates", static_cast<std::uint64_t>(sweep_updates))
          .set("qps_metrics_off", ov.qps_off)
          .set("qps_metrics_on", ov.qps_on)
          .set("ratio", ov.ratio);
      Json orows = Json::array();
      orows.push(std::move(orow));
      Json orec = Json::object();
      orec.set("kind", "serve_overhead")
          .set("claim", "T-SERVE")
          .set("series", "metrics-overhead")
          .set("allocator", o.allocator)
          .set("engine", o.arena ? "arena" : o.engine)
          .set("rows", std::move(orows));
      records.push(std::move(orec));
    }

    if (!o.prom_out.empty()) {
      std::ofstream prom(o.prom_out);
      if (!prom) {
        std::fprintf(stderr, "memreal_serve: cannot write '%s'\n",
                     o.prom_out.c_str());
        return 1;
      }
      prom << obs::MetricRegistry::global().prometheus_text();
      std::cout << "wrote " << o.prom_out << "\n";
    }
    if (snap_out != nullptr) std::cout << "wrote " << o.metrics_out << "\n";
    if (o.metrics_summary) {
      std::cout << "\nmetric summary (last wired point):\n"
                << obs::MetricRegistry::global().summary_table();
    }
  }

  if (!o.json_path.empty()) {
    std::string path = o.json_path;
    if (!o.json_path_set) {
      const char* dir = std::getenv("MEMREAL_BENCH_DIR");
      if (dir != nullptr && dir[0] != '\0') {
        path = std::string(dir) + "/" + path;
      }
    }
    Json doc = Json::object();
    doc.set("bench", "serve")
        .set("schema", std::uint64_t{2})
        .set("git_describe", git_describe())
        .set("fast_mode", fast);
    Json seeds = Json::array();
    seeds.push(o.seed);
    doc.set("seeds", std::move(seeds));
    doc.set("records", std::move(records));
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "memreal_serve: cannot write '%s'\n",
                   path.c_str());
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::cout << "wrote " << path << "\n";
  }
  return verify_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    return run(o);
  } catch (const memreal::InvariantViolation& e) {
    std::fprintf(stderr, "memreal_serve: invariant violation: %s\n",
                 e.what());
    return 1;
  }
}
