// memreal_shard — throughput driver for the sharded multi-cell engine.
// Run with --help for usage.  Exit status 0 = clean, 1 = invariant
// violation, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "alloc/registry.h"
#include "obs/metrics.h"
#include "perfadv/zoo.h"
#include "shard/sharded_engine.h"
#include "util/check.h"
#include "util/json.h"
#include "util/table.h"
#include "workload/churn.h"
#include "workload/multi_tenant.h"
#include "workload/vm_heap.h"

namespace {

using namespace memreal;

constexpr const char* kUsage = R"(memreal_shard [options]
  --allocator NAME   registry allocator for every cell (default simple)
  --engine E         cell engine: validated (default), release or arena.
                     release is the unchecked slab fast path (its
                     correctness story is ctest -L release plus
                     memreal_fuzz --engine release); arena is an alias
                     for --arena below (matching memreal_fuzz)
  --arena            back every shard's cell with a real byte arena:
                     payloads get physical addresses, moves execute real
                     memmoves, and the run reports measured byte traffic.
                     Lowers the default per-shard capacity to 2^22 ticks
                     (a byte payload per tick; override with
                     --capacity-log2)
  --bytes-per-tick N byte-space granule for --arena (default 8); also
                     the minimum allocation and alignment
  --no-verify-payloads
                     skip payload fill-pattern checks under --arena:
                     measures raw memmove bandwidth instead of
                     integrity-checked movement
  --shards N         cell count (default 8)
  --threads N        worker threads (default 0 = all cores)
  --eps X            free-space parameter (default 0.015625)
  --router P         hash | size-class | round-robin (default hash)
  --workload W       churn | multi-tenant | skewed | vm_heap (default
                     churn), or any scenario-zoo name (memreal_adv
                     --list-scenarios); a zoo workload the allocator
                     cannot serve errors up front with the compatible
                     list.  vm_heap is the byte-addressed GC-heap
                     stream (grow-realloc chains, generational death,
                     compaction bursts); pair it with --arena to
                     exercise real payload movement
  --updates N        churn updates in the workload (default 20000)
  --tenants N        tenants for multi-tenant/skewed; palette size for
                     vm_heap on fixed-palette allocators (default 8)
  --zipf S           tenant skew exponent (default 1 / 2 for skewed)
  --batch N          updates per parallel round (default 4096)
  --rebalance X      live-mass imbalance threshold, >= 1 enables the
                     between-batch rebalancer (default 0 = off)
  --seed N           workload + allocator seed (default 1)
  --capacity-log2 N  per-shard capacity 2^N ticks (default 40; 22 under
                     --arena)
  --audit-every N    full per-cell audit cadence (default 0 = final only)
  --no-validate      disable incremental per-update validation
  --json FILE        also write the results as JSON to FILE
  --metrics-summary  print the end-of-run metrics table (wires the
                     observability registry through every cell)
  --metrics-out FILE write a final metrics snapshot (JSON) to FILE
  --prom-out FILE    write a Prometheus text-format dump to FILE
  --quiet            suppress the tables (summary line + JSON only)

The workload's size band comes from the allocator's registered
AllocatorInfo size profile, evaluated against the *shard* capacity, so
every generated item is admissible for the chosen allocator.  The run
ends with a full audit of every cell (including payload pattern
verification under --arena).
)";

struct Options {
  std::string allocator = "simple";
  std::string engine = "validated";
  bool arena = false;
  Tick bytes_per_tick = 8;
  bool verify_payloads = true;
  std::size_t shards = 8;
  std::size_t threads = 0;
  double eps = 1.0 / 64;
  std::string router = "hash";
  std::string workload = "churn";
  std::size_t updates = 20'000;
  std::size_t tenants = 8;
  double zipf = -1.0;  ///< -1 = workload default
  std::size_t batch = 4'096;
  double rebalance = 0.0;
  std::uint64_t seed = 1;
  unsigned capacity_log2 = 40;
  bool capacity_log2_set = false;
  std::size_t audit_every = 0;
  bool validate = true;
  std::string json_path;
  bool metrics_summary = false;
  std::string metrics_out;
  std::string prom_out;
  bool quiet = false;

  [[nodiscard]] bool metrics_wired() const {
    return metrics_summary || !metrics_out.empty() || !prom_out.empty();
  }
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "memreal_shard: %s (run with --help for usage)\n",
               what.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value[0] == '-' || value[0] == '+') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--allocator") {
      o.allocator = next();
    } else if (flag == "--engine") {
      o.engine = next();
      // "arena" is an alias for --arena (matching memreal_fuzz's engine
      // spelling): byte-backed cells over the validated store.
      if (o.engine == "arena") {
        o.engine = "validated";
        o.arena = true;
      } else if (o.engine != "validated" && o.engine != "release") {
        usage_error("--engine must be 'validated', 'release', or 'arena'");
      }
    } else if (flag == "--arena") {
      o.arena = true;
    } else if (flag == "--bytes-per-tick") {
      o.bytes_per_tick = parse_u64(flag, next());
      if (o.bytes_per_tick == 0) usage_error("--bytes-per-tick must be >= 1");
    } else if (flag == "--no-verify-payloads") {
      o.verify_payloads = false;
    } else if (flag == "--shards") {
      o.shards = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--threads") {
      o.threads = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--eps") {
      o.eps = parse_double(flag, next());
    } else if (flag == "--router") {
      o.router = next();
    } else if (flag == "--workload") {
      o.workload = next();
    } else if (flag == "--updates") {
      o.updates = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--tenants") {
      o.tenants = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--zipf") {
      o.zipf = parse_double(flag, next());
    } else if (flag == "--batch") {
      o.batch = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--rebalance") {
      o.rebalance = parse_double(flag, next());
    } else if (flag == "--seed") {
      o.seed = parse_u64(flag, next());
    } else if (flag == "--capacity-log2") {
      const std::uint64_t v = parse_u64(flag, next());
      if (v < 10 || v > 50) usage_error("--capacity-log2 must be in [10, 50]");
      o.capacity_log2 = static_cast<unsigned>(v);
      o.capacity_log2_set = true;
    } else if (flag == "--audit-every") {
      o.audit_every = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--no-validate") {
      o.validate = false;
    } else if (flag == "--json") {
      o.json_path = next();
    } else if (flag == "--metrics-summary") {
      o.metrics_summary = true;
    } else if (flag == "--metrics-out") {
      o.metrics_out = next();
    } else if (flag == "--prom-out") {
      o.prom_out = next();
    } else if (flag == "--quiet") {
      o.quiet = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (o.shards == 0) usage_error("--shards must be >= 1");
  // An arena shard carries a real byte payload per tick; the tick-only
  // default capacity would ask for terabytes of physical arena.
  if (o.arena && !o.capacity_log2_set) o.capacity_log2 = 22;
  // The global workload spans shards * 2^capacity-log2 ticks; reject
  // combinations that would wrap the tick space.
  if (o.shards > (std::numeric_limits<Tick>::max() >> o.capacity_log2)) {
    usage_error("--shards x 2^capacity-log2 overflows the tick space");
  }
  if (o.eps <= 0.0 || o.eps >= 1.0) usage_error("--eps must be in (0, 1)");
  if (o.workload != "churn" && o.workload != "multi-tenant" &&
      o.workload != "skewed" && o.workload != "vm_heap" &&
      find_scenario(o.workload) == nullptr) {
    std::string zoo;
    for (const std::string& s : scenario_names()) zoo += ", " + s;
    usage_error("unknown workload '" + o.workload +
                "' (known: churn, multi-tenant, skewed, vm_heap" + zoo +
                ")");
  }
  return o;
}

/// Builds the workload: item sizes come from the allocator's registered
/// size band over the *shard* capacity; the live-mass budget spans all
/// shards (global capacity = shards * shard_capacity).
Sequence make_workload(const Options& o, Tick shard_capacity) {
  const AllocatorInfo info = allocator_info(o.allocator);
  const Tick global_capacity = shard_capacity * o.shards;
  const Tick min_size = info.sizes.min_size(o.eps, shard_capacity);
  const Tick max_size = info.sizes.max_size(o.eps, shard_capacity) - 1;
  const bool legacy = o.workload == "churn" || o.workload == "multi-tenant" ||
                      o.workload == "skewed" || o.workload == "vm_heap";
  if (!legacy) {
    // Scenario-zoo workload: band over the shard capacity (like the
    // legacy paths), live-mass budget over the global capacity.
    const std::string why =
        scenario_incompatibility(o.workload, info, o.eps, shard_capacity);
    if (!why.empty()) {
      std::string compat;
      for (const std::string& s :
           compatible_scenarios(info, o.eps, shard_capacity)) {
        if (!compat.empty()) compat += ", ";
        compat += s;
      }
      usage_error(why + " (compatible scenarios for " + o.allocator + ": " +
                  (compat.empty() ? "none at this eps" : compat) + ")");
    }
    ScenarioParams p =
        scenario_params_for(info, o.eps, shard_capacity, o.updates, o.seed);
    p.capacity = global_capacity;
    p.tenants = o.tenants;
    if (o.zipf >= 0.0) p.zipf_s = o.zipf;
    p.bytes_per_tick = o.bytes_per_tick;
    return make_scenario(o.workload, p);
  }
  if (o.workload == "vm_heap") {
    // Byte band derived from the allocator's tick band: the smallest
    // byte size that still rounds up to min_size ticks, up to the
    // largest that fits in max_size ticks.
    const Tick bpt = o.bytes_per_tick;
    VmHeapConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.bytes_per_tick = bpt;
    c.min_bytes = (min_size - 1) * bpt + 1;
    c.max_bytes = max_size * bpt;
    c.distinct_sizes = info.sizes.fixed_palette ? o.tenants : 0;
    // The generator's default fill (0.85) is admissible for one cell but
    // leaves no routing headroom across shards: a GC burst's refill wave
    // can find every shard near its own budget.  Match the headroom the
    // other workloads run with.
    c.target_load = 0.7;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_vm_heap(c);
  }
  if (o.workload == "churn") {
    if (info.sizes.fixed_palette) {
      DiscreteChurnConfig c;
      c.capacity = global_capacity;
      c.eps = o.eps;
      c.min_size = min_size;
      c.max_size = max_size;
      c.target_load = 0.8;
      c.churn_updates = o.updates;
      c.seed = o.seed;
      return make_discrete_churn(c);
    }
    ChurnConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = 0.8;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_churn(c);
  }
  const double zipf =
      o.zipf >= 0.0 ? o.zipf : (o.workload == "skewed" ? 2.0 : 1.0);
  if (info.sizes.fixed_palette) {
    // Fixed-palette allocators (DISCRETE) must see a small reused size
    // set, not free samples; model the tenant skew as Zipf weights over
    // a palette of `tenants` distinct sizes.
    DiscreteChurnConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.distinct_sizes = o.tenants;
    c.min_size = min_size;
    c.max_size = max_size;
    c.zipf_s = zipf;
    c.target_load = 0.8;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_discrete_churn(c);
  }
  MultiTenantConfig c;
  c.capacity = global_capacity;
  c.eps = o.eps;
  c.tenants = o.tenants;
  c.zipf_s = zipf;
  c.min_size = min_size;
  c.max_size = max_size;
  c.target_load = 0.8;
  c.churn_updates = o.updates;
  c.seed = o.seed;
  return make_multi_tenant(c);
}

Json results_json(const Options& o, const ShardedEngine& engine,
                  const Sequence& seq, const ShardedRunStats& stats) {
  Json config = Json::object();
  config.set("allocator", o.allocator)
      .set("engine", o.engine)
      .set("arena", o.arena)
      .set("bytes_per_tick", o.bytes_per_tick)
      .set("shards", static_cast<std::uint64_t>(o.shards))
      .set("threads", static_cast<std::uint64_t>(engine.thread_count()))
      .set("eps", o.eps)
      .set("router", o.router)
      .set("workload", seq.name)
      .set("batch", static_cast<std::uint64_t>(o.batch))
      .set("rebalance_threshold", o.rebalance)
      .set("seed", o.seed)
      .set("shard_capacity_log2",
           static_cast<std::uint64_t>(o.capacity_log2))
      .set("validated", o.validate);

  Json global = Json::object();
  global.set("updates", static_cast<std::uint64_t>(stats.global.updates))
      .set("wall_seconds", stats.global.wall_seconds)
      .set("updates_per_second", stats.updates_per_second())
      .set("mean_cost", stats.global.mean_cost())
      .set("ratio_cost", stats.global.ratio_cost())
      .set("max_cost", stats.global.max_cost())
      .set("moved_mass", stats.global.moved_mass)
      .set("update_mass", stats.global.update_mass);
  if (o.arena) {
    global.set("moved_bytes", stats.global.moved_bytes)
        .set("bytes_per_second",
             stats.global.wall_seconds > 0.0
                 ? static_cast<double>(stats.global.moved_bytes) /
                       stats.global.wall_seconds
                 : 0.0);
  }

  Json routing = Json::object();
  routing.set("batches", static_cast<std::uint64_t>(stats.batches))
      .set("fallback_routes",
           static_cast<std::uint64_t>(stats.fallback_routes))
      .set("migrations", static_cast<std::uint64_t>(stats.migrations))
      .set("migrated_mass", stats.migrated_mass)
      .set("imbalance", stats.imbalance())
      .set("max_shard_cost", stats.max_shard_cost())
      .set("median_shard_cost", stats.median_shard_cost());

  Json shards = Json::array();
  for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
    const RunStats& ps = stats.per_shard[s];
    Json row = Json::object();
    row.set("shard", static_cast<std::uint64_t>(s))
        .set("updates", static_cast<std::uint64_t>(ps.updates))
        .set("update_mass", ps.update_mass)
        .set("moved_mass", ps.moved_mass)
        .set("ratio_cost", ps.ratio_cost())
        .set("mean_cost", ps.mean_cost());
    shards.push(std::move(row));
  }

  Json doc = Json::object();
  doc.set("tool", "memreal_shard")
      .set("schema", std::uint64_t{1})
      .set("config", std::move(config))
      .set("global", std::move(global))
      .set("stats", stats.global.to_json())
      .set("routing", std::move(routing))
      .set("shards", std::move(shards));
  return doc;
}

/// Writes the final registry snapshot / Prometheus dump / summary table
/// the --metrics-* flags asked for.  Shared verbatim by memreal_trace.
int write_metrics_outputs(const char* tool, const obs::MetricRegistry& reg,
                          const std::string& metrics_out,
                          const std::string& prom_out, bool summary) {
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", tool,
                   metrics_out.c_str());
      return 1;
    }
    out << reg.snapshot_json().dump(2) << "\n";
  }
  if (!prom_out.empty()) {
    std::ofstream out(prom_out);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", tool,
                   prom_out.c_str());
      return 1;
    }
    out << reg.prometheus_text();
  }
  if (summary) {
    std::cout << "metrics summary:\n" << reg.summary_table();
  }
  return 0;
}

int run(const Options& o) {
  const Tick shard_capacity = Tick{1} << o.capacity_log2;

  ShardedConfig config;
  config.engine = o.engine;
  config.allocator = o.allocator;
  config.arena = o.arena;
  config.bytes_per_tick = o.bytes_per_tick;
  config.verify_payloads = o.verify_payloads;
  config.params.eps = o.eps;
  config.params.seed = o.seed;
  config.shards = o.shards;
  config.shard_capacity = shard_capacity;
  config.eps = o.eps;
  config.router = o.router;
  config.threads = o.threads;
  config.batch_size = o.batch;
  config.rebalance_threshold = o.rebalance;
  config.incremental_validation = o.validate;
  config.audit_every = o.audit_every;
  if (o.metrics_wired()) {
    obs::MetricRegistry::global().reset();
    config.metrics = &obs::MetricRegistry::global();
    config.workload_label = o.workload;
  }

  const Sequence seq = make_workload(o, shard_capacity);
  ShardedEngine engine(config);
  const ShardedRunStats stats = engine.run(seq);
  engine.audit();

  if (!o.quiet) {
    Table per_shard({"shard", "updates", "update_mass", "moved_mass",
                     "ratio_cost", "mean_cost"});
    for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
      const RunStats& ps = stats.per_shard[s];
      per_shard.add_row({std::to_string(s), std::to_string(ps.updates),
                         std::to_string(ps.update_mass),
                         std::to_string(ps.moved_mass),
                         Table::num(ps.ratio_cost(), 4),
                         Table::num(ps.mean_cost(), 4)});
    }
    per_shard.print(std::cout);
    std::cout << "imbalance " << Table::num(stats.imbalance(), 3)
              << "  max shard cost " << Table::num(stats.max_shard_cost(), 4)
              << "  median shard cost "
              << Table::num(stats.median_shard_cost(), 4)
              << "  fallback routes " << stats.fallback_routes
              << "  migrations " << stats.migrations << " ("
              << stats.migrated_mass << " ticks)\n";
  }
  std::cout << seq.name << ": " << stats.global.updates << " updates over "
            << o.shards << " shards x " << engine.thread_count()
            << " threads in " << Table::num(stats.global.wall_seconds, 4)
            << " s = " << Table::num(stats.updates_per_second(), 6)
            << " updates/s (mean cost "
            << Table::num(stats.global.mean_cost(), 4) << ", ratio cost "
            << Table::num(stats.global.ratio_cost(), 4) << ")\n";
  if (o.arena) {
    std::cout << "arena: " << stats.global.moved_bytes
              << " bytes physically moved ("
              << Table::num(stats.global.wall_seconds > 0.0
                                ? static_cast<double>(
                                      stats.global.moved_bytes) /
                                      stats.global.wall_seconds
                                : 0.0,
                            6)
              << " bytes/s, granule " << o.bytes_per_tick
              << " bytes/tick)\n";
  }

  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path);
    if (!out) {
      std::fprintf(stderr, "memreal_shard: cannot write '%s'\n",
                   o.json_path.c_str());
      return 1;
    }
    out << results_json(o, engine, seq, stats).dump(2) << "\n";
  }
  if (o.metrics_wired()) {
    const int rc = write_metrics_outputs(
        "memreal_shard", obs::MetricRegistry::global(), o.metrics_out,
        o.prom_out, o.metrics_summary);
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    return run(o);
  } catch (const memreal::InvariantViolation& e) {
    std::fprintf(stderr, "memreal_shard: invariant violation: %s\n",
                 e.what());
    return 1;
  }
}
