// memreal_trace — lifecycle-trace driver: runs any registry allocator x
// engine x workload with the observability subsystem armed and writes a
// Chrome trace_event JSON file (open it in Perfetto or chrome://tracing).
// Run with --help for usage.  Exit status 0 = clean, 1 = invariant
// violation, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "alloc/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serving_engine.h"
#include "shard/sharded_engine.h"
#include "util/check.h"
#include "util/json.h"
#include "util/table.h"
#include "workload/churn.h"
#include "workload/multi_tenant.h"
#include "workload/vm_heap.h"

namespace {

using namespace memreal;

constexpr const char* kUsage = R"(memreal_trace [options]
  --allocator NAME   registry allocator for every cell (default simple)
  --engine E         cell engine: validated (default), release or arena
  --arena            byte-backed cells (real payload movement; lowers the
                     default per-shard capacity to 2^22 ticks)
  --workload W       churn | multi-tenant | skewed | vm_heap (default
                     churn); sizes come from the allocator's registered
                     band, like memreal_shard
  --updates N        workload churn updates (default 20000)
  --tenants N        tenants / palette size (default 8)
  --shards N         cell count (default 4)
  --serve            drive the updates through the online ServingEngine
                     (serve_deterministic) instead of the batch path, so
                     the trace includes queue-wait spans
  --lanes N          client lanes for --serve (default 4)
  --clock C          wall | logical (default wall; logical stamps spans
                     with deterministic tick counters — the clock
                     serve-deterministic verification runs under)
  --ring N           per-thread span ring capacity (default 65536;
                     oldest spans are overwritten beyond it)
  --seed N           workload + allocator seed (default 1)
  --eps X            free-space parameter (default 0.015625)
  --capacity-log2 N  per-shard capacity 2^N ticks (default 40; 22 under
                     --arena)
  --out FILE         trace output path (default trace.json)
  --metrics-summary  print the end-of-run metrics table
  --metrics-out FILE write a final metrics snapshot (JSON) to FILE
  --prom-out FILE    write a Prometheus text-format dump to FILE
  --quiet            suppress everything but errors

The run ends with a full audit; the trace covers the update pipeline
(route -> queue-wait -> apply -> validate -> arena-flush).
)";

struct Options {
  std::string allocator = "simple";
  std::string engine = "validated";
  bool arena = false;
  std::string workload = "churn";
  std::size_t updates = 20'000;
  std::size_t tenants = 8;
  std::size_t shards = 4;
  bool serve = false;
  std::size_t lanes = 4;
  std::string clock = "wall";
  std::size_t ring = obs::TraceSession::kDefaultRingCapacity;
  std::uint64_t seed = 1;
  double eps = 1.0 / 64;
  unsigned capacity_log2 = 40;
  bool capacity_log2_set = false;
  std::string out_path = "trace.json";
  bool metrics_summary = false;
  std::string metrics_out;
  std::string prom_out;
  bool quiet = false;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "memreal_trace: %s (run with --help for usage)\n",
               what.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value[0] == '-' || value[0] == '+') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    usage_error("bad value '" + std::string(value) + "' for " + flag);
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--allocator") {
      o.allocator = next();
    } else if (flag == "--engine") {
      o.engine = next();
      if (o.engine == "arena") {
        o.engine = "validated";
        o.arena = true;
      } else if (o.engine != "validated" && o.engine != "release") {
        usage_error("--engine must be 'validated', 'release', or 'arena'");
      }
    } else if (flag == "--arena") {
      o.arena = true;
    } else if (flag == "--workload") {
      o.workload = next();
    } else if (flag == "--updates") {
      o.updates = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--tenants") {
      o.tenants = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--shards") {
      o.shards = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--serve") {
      o.serve = true;
    } else if (flag == "--lanes") {
      o.lanes = static_cast<std::size_t>(parse_u64(flag, next()));
      if (o.lanes == 0) usage_error("--lanes must be >= 1");
    } else if (flag == "--clock") {
      o.clock = next();
      if (o.clock != "wall" && o.clock != "logical") {
        usage_error("--clock must be 'wall' or 'logical'");
      }
    } else if (flag == "--ring") {
      o.ring = static_cast<std::size_t>(parse_u64(flag, next()));
      if (o.ring == 0) usage_error("--ring must be >= 1");
    } else if (flag == "--seed") {
      o.seed = parse_u64(flag, next());
    } else if (flag == "--eps") {
      o.eps = parse_double(flag, next());
    } else if (flag == "--capacity-log2") {
      const std::uint64_t v = parse_u64(flag, next());
      if (v < 10 || v > 50) usage_error("--capacity-log2 must be in [10, 50]");
      o.capacity_log2 = static_cast<unsigned>(v);
      o.capacity_log2_set = true;
    } else if (flag == "--out") {
      o.out_path = next();
    } else if (flag == "--metrics-summary") {
      o.metrics_summary = true;
    } else if (flag == "--metrics-out") {
      o.metrics_out = next();
    } else if (flag == "--prom-out") {
      o.prom_out = next();
    } else if (flag == "--quiet") {
      o.quiet = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (o.shards == 0) usage_error("--shards must be >= 1");
  if (o.arena && !o.capacity_log2_set) o.capacity_log2 = 22;
  if (o.shards > (std::numeric_limits<Tick>::max() >> o.capacity_log2)) {
    usage_error("--shards x 2^capacity-log2 overflows the tick space");
  }
  if (o.eps <= 0.0 || o.eps >= 1.0) usage_error("--eps must be in (0, 1)");
  if (o.workload != "churn" && o.workload != "multi-tenant" &&
      o.workload != "skewed" && o.workload != "vm_heap") {
    usage_error("unknown workload '" + o.workload +
                "' (known: churn, multi-tenant, skewed, vm_heap)");
  }
  return o;
}

/// Workload construction mirrors memreal_shard: item sizes come from the
/// allocator's registered band over the shard capacity.
Sequence make_workload(const Options& o, Tick shard_capacity) {
  const AllocatorInfo info = allocator_info(o.allocator);
  const Tick global_capacity = shard_capacity * o.shards;
  const Tick min_size = info.sizes.min_size(o.eps, shard_capacity);
  const Tick max_size = info.sizes.max_size(o.eps, shard_capacity) - 1;
  if (o.workload == "vm_heap") {
    const Tick bpt = 8;
    VmHeapConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.bytes_per_tick = bpt;
    c.min_bytes = (min_size - 1) * bpt + 1;
    c.max_bytes = max_size * bpt;
    c.distinct_sizes = info.sizes.fixed_palette ? o.tenants : 0;
    c.target_load = 0.7;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_vm_heap(c);
  }
  if (o.workload == "churn") {
    if (info.sizes.fixed_palette) {
      DiscreteChurnConfig c;
      c.capacity = global_capacity;
      c.eps = o.eps;
      c.min_size = min_size;
      c.max_size = max_size;
      c.target_load = 0.8;
      c.churn_updates = o.updates;
      c.seed = o.seed;
      return make_discrete_churn(c);
    }
    ChurnConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.min_size = min_size;
    c.max_size = max_size;
    c.target_load = 0.8;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_churn(c);
  }
  const double zipf = o.workload == "skewed" ? 2.0 : 1.0;
  if (info.sizes.fixed_palette) {
    DiscreteChurnConfig c;
    c.capacity = global_capacity;
    c.eps = o.eps;
    c.distinct_sizes = o.tenants;
    c.min_size = min_size;
    c.max_size = max_size;
    c.zipf_s = zipf;
    c.target_load = 0.8;
    c.churn_updates = o.updates;
    c.seed = o.seed;
    return make_discrete_churn(c);
  }
  MultiTenantConfig c;
  c.capacity = global_capacity;
  c.eps = o.eps;
  c.tenants = o.tenants;
  c.zipf_s = zipf;
  c.min_size = min_size;
  c.max_size = max_size;
  c.target_load = 0.8;
  c.churn_updates = o.updates;
  c.seed = o.seed;
  return make_multi_tenant(c);
}

int run(const Options& o) {
  const Tick shard_capacity = Tick{1} << o.capacity_log2;

  ShardedConfig config;
  config.engine = o.engine;
  config.allocator = o.allocator;
  config.arena = o.arena;
  config.params.eps = o.eps;
  config.params.seed = o.seed;
  config.shards = o.shards;
  config.shard_capacity = shard_capacity;
  config.eps = o.eps;
  config.metrics = &obs::MetricRegistry::global();
  config.workload_label = o.workload;
  obs::MetricRegistry::global().reset();

  const Sequence seq = make_workload(o, shard_capacity);

  obs::TraceSession& trace = obs::TraceSession::global();
  trace.start(o.clock == "logical" ? obs::TraceSession::Clock::kLogical
                                   : obs::TraceSession::Clock::kWall,
              o.ring);
  if (o.serve) {
    // Scope the engine so its workers are joined (and every span is
    // recorded) before the export below reads the rings.
    ServingEngine engine(config);
    serve_deterministic(engine, seq, o.lanes, o.seed);
    engine.stop();
    engine.sharded().audit();
  } else {
    ShardedEngine engine(config);
    engine.run(seq);
    engine.audit();
  }
  trace.stop();

  std::ofstream out(o.out_path);
  if (!out) {
    std::fprintf(stderr, "memreal_trace: cannot write '%s'\n",
                 o.out_path.c_str());
    return 1;
  }
  out << trace.chrome_json() << "\n";
  if (!o.quiet) {
    std::cout << "memreal_trace: " << trace.event_count() << " spans ("
              << trace.dropped() << " overwritten) -> " << o.out_path
              << "  [" << o.allocator << " x " << o.engine
              << (o.arena ? "+arena" : "") << " x " << o.workload << ", "
              << (o.serve ? "serve" : "batch") << ", " << o.clock
              << " clock]\n";
  }

  if (!o.metrics_out.empty()) {
    std::ofstream mout(o.metrics_out);
    if (!mout) {
      std::fprintf(stderr, "memreal_trace: cannot write '%s'\n",
                   o.metrics_out.c_str());
      return 1;
    }
    mout << obs::MetricRegistry::global().snapshot_json().dump(2) << "\n";
  }
  if (!o.prom_out.empty()) {
    std::ofstream pout(o.prom_out);
    if (!pout) {
      std::fprintf(stderr, "memreal_trace: cannot write '%s'\n",
                   o.prom_out.c_str());
      return 1;
    }
    pout << obs::MetricRegistry::global().prometheus_text();
  }
  if (o.metrics_summary) {
    std::cout << "metrics summary:\n"
              << obs::MetricRegistry::global().summary_table();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    return run(o);
  } catch (const memreal::InvariantViolation& e) {
    std::fprintf(stderr, "memreal_trace: invariant violation: %s\n",
                 e.what());
    return 1;
  }
}
